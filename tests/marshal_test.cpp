// Typed stub layer: Param<T> round trips, argument decoding, mismatch
// detection, and pointer marshalling corner cases.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/smart_rpc.hpp"
#include "workload/list.hpp"

namespace srpc {
namespace {

using workload::ListNode;

class MarshalTest : public ::testing::Test {
 protected:
  MarshalTest() : world_([] {
          WorldOptions options;
          options.cost = CostModel::zero();
          return options;
        }()) {
    a_ = &world_.create_space("A");
    b_ = &world_.create_space("B");
    workload::register_list_type(world_).status().check();
  }

  World world_;
  AddressSpace* a_ = nullptr;
  AddressSpace* b_ = nullptr;
};

TEST_F(MarshalTest, AllScalarWidthsRoundTrip) {
  b_->bind("echo_kinds",
           [](CallContext&, std::int8_t i8, std::uint16_t u16, std::int32_t i32,
              std::uint64_t u64, float f, double d, bool flag) -> std::int64_t {
             EXPECT_EQ(i8, -7);
             EXPECT_EQ(u16, 60000);
             EXPECT_EQ(i32, -123456);
             EXPECT_EQ(u64, 0xFFFFFFFFFFFFFFFFULL);
             EXPECT_FLOAT_EQ(f, 1.5F);
             EXPECT_DOUBLE_EQ(d, -2.25);
             EXPECT_TRUE(flag);
             return 1;
           })
      .check();
  a_->run([&](Runtime& rt) {
    Session session(rt);
    auto ok = session.call<std::int64_t>(
        b_->id(), "echo_kinds", std::int8_t{-7}, std::uint16_t{60000},
        std::int32_t{-123456}, std::uint64_t{0xFFFFFFFFFFFFFFFFULL}, 1.5F, -2.25,
        true);
    ASSERT_TRUE(ok.is_ok()) << ok.status().to_string();
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(MarshalTest, StringsWithEmbeddedNulAndUnicode) {
  b_->bind("strlen8",
           [](CallContext&, std::string s) -> std::int64_t {
             return static_cast<std::int64_t>(s.size());
           })
      .check();
  a_->run([&](Runtime& rt) {
    Session session(rt);
    std::string tricky = std::string("ab\0cd", 5) + "\xC3\xA9";  // embedded NUL + é
    auto len = session.call<std::int64_t>(b_->id(), "strlen8", tricky);
    ASSERT_TRUE(len.is_ok());
    EXPECT_EQ(len.value(), 7);
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(MarshalTest, FloatSpecialsSurvive) {
  b_->bind("echo_f64",
           [](CallContext&, double d) -> double { return d; })
      .check();
  a_->run([&](Runtime& rt) {
    Session session(rt);
    auto inf = session.call<double>(b_->id(), "echo_f64",
                                    std::numeric_limits<double>::infinity());
    ASSERT_TRUE(inf.is_ok());
    EXPECT_TRUE(std::isinf(inf.value()));
    auto nan = session.call<double>(b_->id(), "echo_f64",
                                    std::numeric_limits<double>::quiet_NaN());
    ASSERT_TRUE(nan.is_ok());
    EXPECT_TRUE(std::isnan(nan.value()));
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(MarshalTest, ConstPointersAreAccepted) {
  b_->bind("first",
           [](CallContext&, const ListNode* head) -> std::int64_t {
             return head != nullptr ? head->value : -1;
           })
      .check();
  a_->run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 1, [](std::uint32_t) { return std::int64_t{8}; });
    head.status().check();
    const ListNode* const_head = head.value();
    Session session(rt);
    auto v = session.call<std::int64_t>(b_->id(), "first", const_head);
    ASSERT_TRUE(v.is_ok()) << v.status().to_string();
    EXPECT_EQ(v.value(), 8);
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(MarshalTest, UnregisteredPointerTypeFailsCleanly) {
  struct Mystery {
    int x;
  };
  b_->bind("noop", [](CallContext&, std::int32_t) -> std::int32_t { return 0; })
      .check();
  a_->run([&](Runtime& rt) {
    Session session(rt);
    Mystery m{1};
    auto bad = session.call<std::int32_t>(b_->id(), "noop", &m);
    ASSERT_FALSE(bad.is_ok());
    EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);  // type not registered
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(MarshalTest, StackPointerRejected) {
  b_->bind("sum",
           [](CallContext&, ListNode* head) -> std::int64_t {
             return workload::sum_list(head);
           })
      .check();
  a_->run([&](Runtime& rt) {
    Session session(rt);
    ListNode local{nullptr, 5};  // not in the managed heap (paper §3.2)
    auto bad = session.call<std::int64_t>(b_->id(), "sum", &local);
    ASSERT_FALSE(bad.is_ok());
    EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(MarshalTest, TooFewArgumentsDetected) {
  b_->bind("needs_two",
           [](CallContext&, std::int64_t, std::int64_t) -> std::int64_t { return 0; })
      .check();
  a_->run([&](Runtime& rt) {
    Session session(rt);
    auto bad = session.call<std::int64_t>(b_->id(), "needs_two", std::int64_t{1});
    ASSERT_FALSE(bad.is_ok());
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(MarshalTest, VoidProceduresWork) {
  static std::int64_t sink = 0;
  b_->bind("record",
           [](CallContext&, std::int64_t v) -> std::int64_t {
             sink = v;
             return 0;
           })
      .check();
  a_->run([&](Runtime& rt) {
    Session session(rt);
    ASSERT_TRUE(typed_call_void(rt, b_->id(), "record", std::int64_t{314}).is_ok());
    ASSERT_TRUE(session.end().is_ok());
  });
  b_->run([](Runtime&) { EXPECT_EQ(sink, 314); });
}

TEST_F(MarshalTest, LongPointerParamPassesVerbatim) {
  b_->bind("inspect",
           [](CallContext&, LongPointer p) -> std::uint64_t { return p.address; })
      .check();
  a_->run([&](Runtime& rt) {
    Session session(rt);
    auto addr = session.call<std::uint64_t>(b_->id(), "inspect",
                                            LongPointer{7, 0xABCD, 64});
    ASSERT_TRUE(addr.is_ok());
    EXPECT_EQ(addr.value(), 0xABCDu);
    ASSERT_TRUE(session.end().is_ok());
  });
}

}  // namespace
}  // namespace srpc
