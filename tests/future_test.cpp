// Future/Promise state machine and endpoint multiplexing.
//
// Covers the async completion primitive end to end: ready-before-wait,
// wait-before-ready (pump-driven), deadline-expired futures that stay
// collectable, abandoned promises, when_all over mixed peers, and the
// one-waiter-per-seq / single-consumer contracts (second waiter is a typed
// error, never a silently stolen reply). The world-level cases drive real
// pipelined calls whose replies are delayed and reordered by the fault
// transport.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <variant>
#include <vector>

#include "core/smart_rpc.hpp"
#include "net/fault_transport.hpp"
#include "net/sim_network.hpp"
#include "rpc/future.hpp"
#include "rpc/rpc_endpoint.hpp"

namespace srpc {
namespace {

using Clock = std::chrono::steady_clock;

// --- Future/Promise state machine ------------------------------------------

TEST(Future, ReadyBeforeWait) {
  Promise<int> promise;
  Future<int> fut = promise.get_future();
  EXPECT_TRUE(fut.valid());
  EXPECT_FALSE(fut.ready());
  promise.set_value(42);
  EXPECT_TRUE(fut.ready());
  auto out = fut.get();
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value(), 42);
  // get() is one-shot: the future is spent.
  EXPECT_FALSE(fut.valid());
  auto again = fut.get();
  ASSERT_FALSE(again.is_ok());
  EXPECT_EQ(again.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Future, WaitBeforeReadyDrivesThePump) {
  Promise<int> promise;
  int pumps = 0;
  promise.set_pump([&](Clock::time_point) {
    if (++pumps == 3) promise.set_value(7);
    return Status::ok();
  });
  Future<int> fut = promise.get_future();
  auto out = fut.get(Clock::now() + std::chrono::seconds(5));
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value(), 7);
  EXPECT_EQ(pumps, 3);
}

TEST(Future, DeadlineExpiredFutureStaysValid) {
  Promise<int> promise;
  promise.set_pump([](Clock::time_point) {
    return deadline_exceeded("nothing arrived");
  });
  Future<int> fut = promise.get_future();
  auto out = fut.get(Clock::now() + std::chrono::milliseconds(10));
  ASSERT_FALSE(out.is_ok());
  EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded);
  // A deadline does not consume the future: fulfil and retry.
  EXPECT_TRUE(fut.valid());
  promise.set_value(9);
  auto retry = fut.get();
  ASSERT_TRUE(retry.is_ok());
  EXPECT_EQ(retry.value(), 9);
}

TEST(Future, AbandonedPromiseYieldsUnavailable) {
  Future<int> fut;
  {
    Promise<int> promise;
    fut = promise.get_future();
  }  // promise dies unfulfilled
  EXPECT_TRUE(fut.ready());
  auto out = fut.get();
  ASSERT_FALSE(out.is_ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnavailable);
}

TEST(Future, PendingWithoutPumpIsTyped) {
  Promise<int> promise;
  Future<int> fut = promise.get_future();
  auto out = fut.get(Clock::now() + std::chrono::milliseconds(5));
  ASSERT_FALSE(out.is_ok());
  EXPECT_EQ(out.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Future, ErrorResultPropagates) {
  Promise<int> promise;
  promise.set_error(internal_error("remote blew up"));
  Future<int> fut = promise.get_future();
  auto out = fut.get();
  ASSERT_FALSE(out.is_ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInternal);
}

TEST(Future, DropFiresOnDropOnlyWhenUnconsumed) {
  int dropped = 0;
  {
    Promise<int> promise;
    promise.set_on_drop([&] { ++dropped; });
    Future<int> fut = promise.get_future();
  }  // unconsumed: hook fires
  EXPECT_EQ(dropped, 1);
  {
    Promise<int> promise;
    promise.set_on_drop([&] { ++dropped; });
    Future<int> fut = promise.get_future();
    promise.set_value(1);
    EXPECT_TRUE(fut.get().is_ok());
  }  // consumed: hook must not fire again
  EXPECT_EQ(dropped, 1);
}

TEST(Future, MoveTransfersTheState) {
  Promise<int> promise;
  Future<int> a = promise.get_future();
  Future<int> b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  promise.set_value(5);
  auto out = b.get();
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value(), 5);
}

TEST(Future, HardPumpFailureConsumesAndReports) {
  Promise<int> promise;
  int dropped = 0;
  promise.set_on_drop([&] { ++dropped; });
  promise.set_pump(
      [](Clock::time_point) { return internal_error("pump died"); });
  Future<int> fut = promise.get_future();
  auto out = fut.get(Clock::now() + std::chrono::seconds(1));
  ASSERT_FALSE(out.is_ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInternal);
  // The hard failure released the slot (on_drop) and spent the future.
  EXPECT_EQ(dropped, 1);
  EXPECT_FALSE(fut.valid());
}

TEST(Future, WhenAllCollectsEveryOutcome) {
  std::vector<Promise<int>> promises(3);
  std::vector<Future<int>> futures;
  futures.reserve(promises.size());
  for (auto& p : promises) futures.push_back(p.get_future());
  promises[2].set_value(30);  // ready before the wait, out of order
  promises[0].set_value(10);
  promises[1].set_error(unavailable("peer gone"));
  auto results = when_all(futures);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].value(), 10);
  EXPECT_EQ(results[1].status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(results[2].value(), 30);
}

// --- endpoint multiplexing --------------------------------------------------

Message make(MessageType type, SpaceId from, SpaceId to, std::uint64_t seq) {
  Message msg;
  msg.type = type;
  msg.from = from;
  msg.to = to;
  msg.session = 1;
  msg.seq = seq;
  return msg;
}

class MultiplexTest : public ::testing::Test {
 protected:
  MultiplexTest() : endpoint_(0, net_, box_) {
    net_.attach(0, &box_);
    net_.attach(1, &peer_);
  }

  Result<std::uint64_t> issue(std::uint64_t seq,
                              MessageType reply = MessageType::kReturn) {
    RpcEndpoint::IssueOptions opts;
    return endpoint_.issue(make(MessageType::kCall, 0, 1, seq), reply,
                           std::move(opts));
  }

  SimNetwork net_{CostModel::zero()};
  Mailbox box_;
  Mailbox peer_;
  RpcEndpoint endpoint_;
};

TEST_F(MultiplexTest, DuplicateSeqIsTyped) {
  ASSERT_TRUE(issue(5).is_ok());
  auto dup = issue(5);
  ASSERT_FALSE(dup.is_ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(endpoint_.inflight(), 1u);
}

TEST_F(MultiplexTest, CollectUnknownSeqIsTyped) {
  auto out = endpoint_.collect(99, nullptr);
  ASSERT_FALSE(out.is_ok());
  EXPECT_EQ(out.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(MultiplexTest, RepliesCompleteInArrivalOrder) {
  ASSERT_TRUE(issue(1).is_ok());
  ASSERT_TRUE(issue(2).is_ok());
  ASSERT_TRUE(issue(3).is_ok());
  EXPECT_EQ(endpoint_.inflight(), 3u);
  // Replies arrive out of issue order: 3, 1, 2.
  ASSERT_TRUE(box_.push(make(MessageType::kReturn, 1, 0, 3)).is_ok());
  ASSERT_TRUE(box_.push(make(MessageType::kReturn, 1, 0, 1)).is_ok());
  ASSERT_TRUE(box_.push(make(MessageType::kReturn, 1, 0, 2)).is_ok());
  // Collecting seq 2 pumps through 3's and 1's replies, completing their
  // slots in place.
  auto r2 = endpoint_.collect(2, nullptr);
  ASSERT_TRUE(r2.is_ok());
  EXPECT_EQ(r2.value().seq, 2u);
  EXPECT_TRUE(endpoint_.slot_done(1));
  EXPECT_TRUE(endpoint_.slot_done(3));
  auto r3 = endpoint_.collect(3, nullptr);
  ASSERT_TRUE(r3.is_ok());
  auto r1 = endpoint_.collect(1, nullptr);
  ASSERT_TRUE(r1.is_ok());
  EXPECT_EQ(endpoint_.inflight(), 0u);
}

TEST_F(MultiplexTest, SecondCollectorIsTypedNotStolen) {
  ASSERT_TRUE(issue(7).is_ok());
  // A non-reply message triggers the dispatcher mid-collect; the nested
  // attempt to collect the same seq must fail typed, and the outer wait
  // must still get its reply.
  ASSERT_TRUE(box_.push(make(MessageType::kCall, 1, 0, 50)).is_ok());
  ASSERT_TRUE(box_.push(make(MessageType::kReturn, 1, 0, 7)).is_ok());
  bool nested_checked = false;
  auto out = endpoint_.collect(7, [&](Message) {
    auto nested = endpoint_.collect(7, nullptr);
    EXPECT_FALSE(nested.is_ok());
    EXPECT_EQ(nested.status().code(), StatusCode::kAlreadyExists);
    nested_checked = true;
    return Status::ok();
  });
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value().seq, 7u);
  EXPECT_TRUE(nested_checked);
}

TEST_F(MultiplexTest, DetachedSlotFiresCompletionAndSelfErases) {
  RpcEndpoint::IssueOptions opts;
  opts.detached = true;
  int completions = 0;
  opts.on_complete = [&](Result<Message>& reply) {
    EXPECT_TRUE(reply.is_ok());
    ++completions;
  };
  ASSERT_TRUE(endpoint_
                  .issue(make(MessageType::kCall, 0, 1, 11),
                         MessageType::kReturn, std::move(opts))
                  .is_ok());
  ASSERT_TRUE(box_.push(make(MessageType::kReturn, 1, 0, 11)).is_ok());
  ASSERT_TRUE(
      endpoint_.pump_once(Clock::now() + std::chrono::seconds(1), nullptr)
          .is_ok());
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(endpoint_.inflight(), 0u);
}

TEST_F(MultiplexTest, CancelSettlesTheSlot) {
  RpcEndpoint::IssueOptions opts;
  Status seen = Status::ok();
  opts.on_complete = [&](Result<Message>& reply) { seen = reply.status(); };
  ASSERT_TRUE(endpoint_
                  .issue(make(MessageType::kCall, 0, 1, 13),
                         MessageType::kReturn, std::move(opts))
                  .is_ok());
  ASSERT_TRUE(endpoint_.cancel(13).is_ok());
  EXPECT_EQ(endpoint_.inflight(), 0u);
  EXPECT_EQ(seen.code(), StatusCode::kUnavailable);
  // A late reply for the cancelled seq no longer matches a slot; it flows
  // to the main loop as ordinary (stale) traffic instead of completing
  // anything — the runtime's dispatcher absorbs it there.
  ASSERT_TRUE(box_.push(make(MessageType::kReturn, 1, 0, 13)).is_ok());
  auto item = endpoint_.next();
  ASSERT_TRUE(item.is_ok());
  EXPECT_EQ(std::get<Message>(item.value()).seq, 13u);
  EXPECT_EQ(endpoint_.inflight(), 0u);
}

TEST_F(MultiplexTest, StrayRepliesForLiveSlotsNeverSurfaceFromNext) {
  ASSERT_TRUE(issue(21).is_ok());
  ASSERT_TRUE(box_.push(make(MessageType::kReturn, 1, 0, 21)).is_ok());
  ASSERT_TRUE(box_.push(make(MessageType::kCall, 1, 0, 60)).is_ok());
  // next() routes the reply into its slot and surfaces only the CALL.
  auto item = endpoint_.next();
  ASSERT_TRUE(item.is_ok());
  EXPECT_EQ(std::get<Message>(item.value()).type, MessageType::kCall);
  EXPECT_TRUE(endpoint_.slot_done(21));
  auto out = endpoint_.collect(21, nullptr);
  ASSERT_TRUE(out.is_ok());
}

// --- mailbox single-consumer contract ---------------------------------------

TEST(MailboxContract, SecondBlockedConsumerIsTyped) {
  Mailbox box;
  std::thread blocked([&] {
    // Parks until the release message below. The main thread's probes
    // also take the consumer guard momentarily, so this side can lose the
    // race and be the one refused — retry until it really parks.
    for (;;) {
      auto item = box.pop();
      if (item.status().code() == StatusCode::kFailedPrecondition) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      ASSERT_TRUE(item.is_ok());
      EXPECT_EQ(std::get<Message>(item.value()).seq, 1u);
      return;
    }
  });
  // Wait until the first consumer holds the guard, then assert the typed
  // refusal (poll: the thread may not have parked yet).
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  Status second = Status::ok();
  while (Clock::now() < deadline) {
    auto item = box.pop_until(Clock::now());
    if (!item.is_ok() &&
        item.status().code() == StatusCode::kFailedPrecondition) {
      second = item.status();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(second.code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(box.push(make(MessageType::kReturn, 1, 0, 1)).is_ok());
  blocked.join();
  // Contract released: this consumer may block again.
  ASSERT_TRUE(box.push(make(MessageType::kReturn, 1, 0, 2)).is_ok());
  auto item = box.pop();
  ASSERT_TRUE(item.is_ok());
  EXPECT_EQ(std::get<Message>(item.value()).seq, 2u);
}

// --- pipelined calls through a world ----------------------------------------

class AsyncCallTest : public ::testing::Test {
 protected:
  AsyncCallTest() {
    WorldOptions options;
    options.cost = CostModel::zero();
    options.fault_injection = true;
    world_ = std::make_unique<World>(options);
    a_ = &world_->create_space("A");
    b_ = &world_->create_space("B");
    c_ = &world_->create_space("C");
    b_->bind("double",
             [](CallContext&, std::int64_t v) -> std::int64_t { return 2 * v; })
        .check();
    c_->bind("triple",
             [](CallContext&, std::int64_t v) -> std::int64_t { return 3 * v; })
        .check();
    fault_ = world_->fault();
  }

  ~AsyncCallTest() override {
    if (fault_ != nullptr) fault_->disarm();
  }

  std::unique_ptr<World> world_;
  AddressSpace* a_ = nullptr;
  AddressSpace* b_ = nullptr;
  AddressSpace* c_ = nullptr;
  FaultTransport* fault_ = nullptr;
};

TEST_F(AsyncCallTest, PipelinedCallsCollectInAnyOrder) {
  a_->run([&](Runtime& rt) {
    Session session(rt);
    auto f1 = session.call_async<std::int64_t>(1, "double", std::int64_t{10});
    auto f2 = session.call_async<std::int64_t>(2, "triple", std::int64_t{10});
    auto f3 = session.call_async<std::int64_t>(1, "double", std::int64_t{11});
    ASSERT_TRUE(f1.is_ok()) << f1.status().to_string();
    ASSERT_TRUE(f2.is_ok()) << f2.status().to_string();
    ASSERT_TRUE(f3.is_ok()) << f3.status().to_string();
    // Collect newest-first: replies already on the wire complete the other
    // slots while f3 blocks.
    auto r3 = f3.value().get();
    auto r2 = f2.value().get();
    auto r1 = f1.value().get();
    ASSERT_TRUE(r1.is_ok()) << r1.status().to_string();
    ASSERT_TRUE(r2.is_ok()) << r2.status().to_string();
    ASSERT_TRUE(r3.is_ok()) << r3.status().to_string();
    EXPECT_EQ(r1.value(), 20);
    EXPECT_EQ(r2.value(), 30);
    EXPECT_EQ(r3.value(), 22);
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(AsyncCallTest, ReorderedRepliesStayMatchedToTheirSeq) {
  // Shuffle the wire: every RETURN is delayed behind up to 4 later
  // messages, so replies land out of issue order.
  FaultOptions opts;
  opts.seed = 1234;
  opts.delay = 1.0;
  opts.delay_window = 4;
  fault_->target({MessageType::kReturn});
  fault_->arm(opts);
  a_->run([&](Runtime& rt) {
    Session session(rt);
    std::vector<TypedCallFuture<std::int64_t>> futures;
    for (std::int64_t i = 0; i < 8; ++i) {
      auto fut = session.call_async<std::int64_t>(1 + (i % 2),
                                                  (i % 2) ? "triple" : "double",
                                                  i);
      ASSERT_TRUE(fut.is_ok()) << fut.status().to_string();
      futures.push_back(std::move(fut.value()));
    }
    // Collect with short deadlines, flushing the delay queue on every
    // miss: a RETURN produced after a flush is held again, and the
    // collecting side generates no further traffic to release it.
    const auto watchdog = Clock::now() + std::chrono::seconds(20);
    for (std::int64_t i = 0; i < 8; ++i) {
      Result<std::int64_t> out = internal_error("unset");
      for (;;) {
        out = futures[static_cast<std::size_t>(i)].get(
            Clock::now() + std::chrono::milliseconds(50));
        if (out.status().code() != StatusCode::kDeadlineExceeded) break;
        ASSERT_LT(Clock::now(), watchdog) << "future " << i << " stuck";
        fault_->flush();
      }
      ASSERT_TRUE(out.is_ok()) << out.status().to_string();
      EXPECT_EQ(out.value(), ((i % 2) ? 3 : 2) * i);
    }
    fault_->disarm();
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(AsyncCallTest, AbandonedCallFutureReleasesItsSlot) {
  a_->run([&](Runtime& rt) {
    Session session(rt);
    {
      auto fut = session.call_async<std::int64_t>(1, "double", std::int64_t{4});
      ASSERT_TRUE(fut.is_ok());
    }  // dropped unconsumed: the slot is cancelled, the reply goes stale
    // The runtime is fully usable: a blocking call succeeds and the stale
    // RETURN is absorbed without wedging anything.
    auto out = session.call<std::int64_t>(1, "double", std::int64_t{5});
    ASSERT_TRUE(out.is_ok()) << out.status().to_string();
    EXPECT_EQ(out.value(), 10);
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(AsyncCallTest, DroppedReplyExpiresTheFuture) {
  FaultOptions opts;
  opts.drop = 1.0;
  fault_->target({MessageType::kReturn});
  fault_->arm(opts);
  a_->run([&](Runtime& rt) {
    rt.set_timeouts(TimeoutConfig::aggressive());
    Session session(rt);
    auto fut = session.call_async<std::int64_t>(1, "double", std::int64_t{4});
    ASSERT_TRUE(fut.is_ok());
    // A short caller deadline fires first and leaves the future pending...
    auto early = fut.value().get(Clock::now() + std::chrono::milliseconds(5));
    ASSERT_FALSE(early.is_ok());
    EXPECT_EQ(early.status().code(), StatusCode::kDeadlineExceeded);
    // ...then the request deadline settles the slot with the terminal
    // timeout (a CALL is never retransmitted: single attempt).
    auto out = fut.value().get(Clock::now() + std::chrono::seconds(30));
    ASSERT_FALSE(out.is_ok());
    EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded);
    fault_->disarm();
    ASSERT_TRUE(session.abort().is_ok());
  });
}

}  // namespace
}  // namespace srpc
