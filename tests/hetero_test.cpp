// Heterogeneity end to end: a big-endian 32-bit (SPARC-flavoured) home
// space serves a little-endian 64-bit host space. Only the *logical type*
// is shared (paper §5.2) — layouts, endianness and pointer widths differ,
// and the canonical XDR form plus per-architecture layout engine reconcile
// them on every transfer.
#include <gtest/gtest.h>

#include "core/smart_rpc.hpp"
#include "types/value_view.hpp"
#include "workload/list.hpp"

namespace srpc {
namespace {

using workload::ListNode;

class HeteroTest : public ::testing::Test {
 protected:
  HeteroTest() : world_([] {
          WorldOptions options;
          options.cost = CostModel::zero();
          return options;
        }()) {
    host_ = &world_.create_space("host", host_arch());
    sparc_ = &world_.create_space("sparc", sparc32_arch());
    workload::register_list_type(world_).status().check();
    node_ = world_.registry().find_by_name("ListNode").value();
  }

  // Builds a linked list in the SPARC space's heap through the descriptor
  // (its images are big-endian with 4-byte pointers; host structs can't
  // touch them).
  std::uint64_t build_sparc_list(std::span<const std::int64_t> values) {
    return sparc_->run([&](Runtime& rt) -> std::uint64_t {
      std::vector<std::uint64_t> addrs;
      for (std::size_t i = 0; i < values.size(); ++i) {
        auto mem = rt.heap().allocate(node_);
        mem.status().check();
        addrs.push_back(reinterpret_cast<std::uint64_t>(mem.value()));
      }
      for (std::size_t i = 0; i < values.size(); ++i) {
        ValueView view(rt.registry(), rt.layouts(), rt.arch(), node_,
                       reinterpret_cast<void*>(addrs[i]));
        view.field("value").value().set_int(values[i]).check();
        view.field("next")
            .value()
            .set_pointer(i + 1 < values.size() ? addrs[i + 1] : 0)
            .check();
      }
      return addrs.empty() ? 0 : addrs[0];
    });
  }

  std::int64_t read_sparc_value(std::uint64_t addr) {
    return sparc_->run([&](Runtime& rt) -> std::int64_t {
      ValueView view(rt.registry(), rt.layouts(), rt.arch(), node_,
                     reinterpret_cast<void*>(addr));
      return view.field("value").value().get_int().value();
    });
  }

  World world_;
  AddressSpace* host_ = nullptr;
  AddressSpace* sparc_ = nullptr;
  TypeId node_ = kInvalidTypeId;
};

TEST_F(HeteroTest, ForeignHeapAddressesFitFourBytePointers) {
  const std::uint64_t head = build_sparc_list(std::vector<std::int64_t>{1});
  EXPECT_LT(head, 1ULL << 32);
}

TEST_F(HeteroTest, SparcLayoutMatchesThePaper) {
  // Two 4-byte pointers... no: ListNode is {next, value} = 4 + pad + 8 = 16
  // on SPARC32 (natural alignment), 16 on the host too for this type.
  EXPECT_EQ(world_.layouts().size_of(sparc32_arch(), node_), 16u);
}

TEST_F(HeteroTest, HostTraversesBigEndianRemoteList) {
  const std::int64_t values[] = {10, -20, 30, -40};
  const std::uint64_t head_addr = build_sparc_list(values);
  sparc_
      ->bind("give_head",
             [head_addr](CallContext&, std::int32_t) -> ListNode* {
               return reinterpret_cast<ListNode*>(head_addr);
             })
      .check();

  host_->run([&](Runtime& rt) {
    Session session(rt);
    auto head = session.call<ListNode*>(sparc_->id(), "give_head", 0);
    ASSERT_TRUE(head.is_ok()) << head.status().to_string();
    // Plain host-side traversal: every node was converted BE32 -> XDR ->
    // host layout on the way in, including sign handling.
    EXPECT_EQ(workload::sum_list(head.value()), -20);
    std::int64_t expected[] = {10, -20, 30, -40};
    int i = 0;
    for (const ListNode* n = head.value(); n != nullptr; n = n->next, ++i) {
      EXPECT_EQ(n->value, expected[i]);
    }
    EXPECT_EQ(i, 4);
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(HeteroTest, HostWritesConvertBackToBigEndianAtWriteBack) {
  const std::int64_t values[] = {1, 2, 3};
  const std::uint64_t head_addr = build_sparc_list(values);
  sparc_
      ->bind("give_head",
             [head_addr](CallContext&, std::int32_t) -> ListNode* {
               return reinterpret_cast<ListNode*>(head_addr);
             })
      .check();

  host_->run([&](Runtime& rt) {
    Session session(rt);
    auto head = session.call<ListNode*>(sparc_->id(), "give_head", 0);
    ASSERT_TRUE(head.is_ok());
    workload::scale_list(head.value(), -1000);  // dirty the cache
    ASSERT_TRUE(session.end().is_ok());         // write-back to the BE32 home
  });

  EXPECT_EQ(read_sparc_value(head_addr), -1000);
}

TEST_F(HeteroTest, SparcCallsIntoHostWithItsOwnPointers) {
  // The SPARC space as ground thread: it passes ITS pointer to a host
  // procedure, which traverses transparently.
  const std::int64_t values[] = {7, 7, 7};
  const std::uint64_t head_addr = build_sparc_list(values);
  host_
      ->bind("sum",
             [](CallContext&, ListNode* head) -> std::int64_t {
               return workload::sum_list(head);
             })
      .check();

  const SpaceId host_id = host_->id();
  const std::int64_t total = sparc_->run([&](Runtime& rt) -> std::int64_t {
    Session session(rt);
    // Raw stub: the sparc side cannot use ListNode* (host layout), so it
    // marshals the long pointer explicitly.
    auto lp = rt.unswizzle(head_addr, node_);
    lp.status().check();
    ByteBuffer args;
    xdr::Encoder enc(args);
    encode_long_pointer(enc, lp.value());
    const std::uint64_t roots[] = {head_addr};
    auto reply = rt.call_raw(host_id, "sum", std::move(args), roots);
    reply.status().check();
    xdr::Decoder dec(reply.value());
    auto sum = dec.get_i64();
    sum.status().check();
    session.end().check();
    return sum.value();
  });
  EXPECT_EQ(total, 21);
}

TEST_F(HeteroTest, ValueViewRejectsTypeMisuse) {
  const std::uint64_t head = build_sparc_list(std::vector<std::int64_t>{5});
  sparc_->run([&](Runtime& rt) {
    ValueView view(rt.registry(), rt.layouts(), rt.arch(), node_,
                   reinterpret_cast<void*>(head));
    EXPECT_FALSE(view.get_int().is_ok());             // struct, not scalar
    EXPECT_FALSE(view.field("nope").is_ok());         // unknown field
    EXPECT_FALSE(view.element(0).is_ok());            // not an array
    auto value = view.field("value").value();
    EXPECT_FALSE(value.get_pointer().is_ok());        // scalar, not pointer
    auto next = view.field("next").value();
    EXPECT_FALSE(next.set_pointer(1ULL << 40).is_ok());  // doesn't fit 4 bytes
  });
}

}  // namespace
}  // namespace srpc
