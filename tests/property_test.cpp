// Property sweeps: for randomly generated structures and access patterns,
// executing remotely through the smart-RPC cache must be observationally
// identical to executing locally — reads return the same values, and after
// the session every write has landed in the home heap.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/smart_rpc.hpp"
#include "workload/access_pattern.hpp"
#include "workload/graph.hpp"
#include "workload/list.hpp"
#include "workload/tree.hpp"

namespace srpc {
namespace {

using workload::GraphNode;
using workload::ListNode;
using workload::TreeNode;

WorldOptions fast_world() {
  WorldOptions options;
  options.cost = CostModel::zero();
  options.cache.page_count = 8192;
  return options;
}

// ---------------------------------------------------------------------------
// Random graphs: remote reachable-sum == local reachable-sum.
// ---------------------------------------------------------------------------

struct GraphCase {
  std::uint32_t nodes;
  double edge_probability;
  bool cycles;
  std::uint64_t seed;
};

class GraphEquivalence : public ::testing::TestWithParam<GraphCase> {};

TEST_P(GraphEquivalence, RemoteTraversalMatchesLocal) {
  const GraphCase param = GetParam();
  World world(fast_world());
  auto& caller = world.create_space("caller");
  auto& callee = world.create_space("callee");
  workload::register_graph_type(world).status().check();

  callee
      .bind("sum",
            [](CallContext&, GraphNode* root) -> std::int64_t {
              return workload::sum_reachable(root);
            })
      .check();

  caller.run([&](Runtime& rt) {
    workload::GraphSpec spec;
    spec.node_count = param.nodes;
    spec.edge_probability = param.edge_probability;
    spec.allow_cycles = param.cycles;
    spec.seed = param.seed;
    auto root = workload::build_graph(rt, spec);
    root.status().check();
    const std::int64_t expected = workload::sum_reachable(root.value());

    Session session(rt);
    auto sum = session.call<std::int64_t>(callee.id(), "sum", root.value());
    ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
    EXPECT_EQ(sum.value(), expected);
    ASSERT_TRUE(session.end().is_ok());
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GraphEquivalence,
    ::testing::Values(GraphCase{1, 0.0, false, 1}, GraphCase{2, 1.0, true, 2},
                      GraphCase{17, 0.3, false, 3}, GraphCase{64, 0.5, true, 4},
                      GraphCase{64, 0.9, true, 5}, GraphCase{200, 0.2, true, 6},
                      GraphCase{333, 0.6, false, 7}, GraphCase{500, 0.4, true, 8}));

// ---------------------------------------------------------------------------
// Random read/write patterns on a remote array of list nodes: the callee
// replays the script against remote data; the test replays it locally and
// compares both the read log and the final home state.
// ---------------------------------------------------------------------------

struct PatternCase {
  std::uint32_t targets;
  std::uint32_t ops;
  double write_ratio;
  std::uint64_t seed;
};

class PatternEquivalence : public ::testing::TestWithParam<PatternCase> {};

TEST_P(PatternEquivalence, WritesLandAndReadsMatch) {
  const PatternCase param = GetParam();
  World world(fast_world());
  auto& caller = world.create_space("caller");
  auto& callee = world.create_space("callee");
  workload::register_list_type(world).status().check();

  // The callee interprets the op script against the remote list: target
  // selection by index walk (lists have no random access — this also makes
  // every op traverse swizzled pointers).
  callee
      .bind("replay",
            [](CallContext&, ListNode* head, std::uint32_t op_count,
               std::uint32_t target_count, std::uint64_t seed) -> std::int64_t {
              const auto pattern = workload::make_pattern(
                  op_count, target_count, /*write_ratio=*/0.5, seed);
              std::int64_t read_hash = 0;
              for (const auto& op : pattern.ops) {
                ListNode* n = head;
                for (std::uint32_t i = 0; i < op.target && n != nullptr; ++i) {
                  n = n->next;
                }
                if (n == nullptr) continue;
                if (op.kind == workload::OpKind::kWrite) {
                  n->value += op.operand;
                } else {
                  read_hash = read_hash * 31 + n->value;
                }
              }
              return read_hash;
            })
      .check();

  caller.run([&](Runtime& rt) {
    auto head = workload::build_list(rt, param.targets, [](std::uint32_t i) {
      return static_cast<std::int64_t>(i) * 11 - 5;
    });
    head.status().check();

    // Local oracle over a plain copy.
    std::vector<std::int64_t> oracle(param.targets);
    {
      std::uint32_t i = 0;
      for (ListNode* n = head.value(); n != nullptr; n = n->next) {
        oracle[i++] = n->value;
      }
    }
    const auto pattern =
        workload::make_pattern(param.ops, param.targets, 0.5, param.seed);
    std::int64_t expected_hash = 0;
    for (const auto& op : pattern.ops) {
      if (op.target >= param.targets) continue;
      if (op.kind == workload::OpKind::kWrite) {
        oracle[op.target] += op.operand;
      } else {
        expected_hash = expected_hash * 31 + oracle[op.target];
      }
    }

    Session session(rt);
    auto hash = session.call<std::int64_t>(callee.id(), "replay", head.value(),
                                           param.ops, param.targets, param.seed);
    ASSERT_TRUE(hash.is_ok()) << hash.status().to_string();
    EXPECT_EQ(hash.value(), expected_hash);
    ASSERT_TRUE(session.end().is_ok());

    // After the session every write has landed at home.
    std::uint32_t i = 0;
    for (ListNode* n = head.value(); n != nullptr; n = n->next, ++i) {
      ASSERT_EQ(n->value, oracle[i]) << "node " << i;
    }
    EXPECT_EQ(i, param.targets);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PatternEquivalence,
    ::testing::Values(PatternCase{1, 10, 0.5, 11}, PatternCase{8, 50, 0.5, 12},
                      PatternCase{32, 200, 0.5, 13}, PatternCase{64, 400, 0.5, 14},
                      PatternCase{128, 300, 0.5, 15},
                      PatternCase{256, 500, 0.5, 16}));

// ---------------------------------------------------------------------------
// Random trees with random visit limits across closure sizes: result
// equivalence must hold regardless of the eagerness knob.
// ---------------------------------------------------------------------------

class ClosureEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClosureEquivalence, VisitSumIndependentOfClosureSize) {
  World world(fast_world());
  auto& caller = world.create_space("caller");
  auto& callee = world.create_space("callee");
  workload::register_tree_type(world).status().check();
  callee
      .bind("visit",
            [](CallContext&, TreeNode* root, std::uint64_t limit) -> std::int64_t {
              return workload::visit_prefix(root, limit);
            })
      .check();

  caller.run([&](Runtime& rt) {
    rt.cache().set_closure_bytes(GetParam()).check();
    callee.run([&](Runtime& crt) { crt.cache().set_closure_bytes(GetParam()).check(); });
    auto root = workload::build_complete_tree(rt, 127);
    root.status().check();
    Rng rng(GetParam() + 17);
    for (int round = 0; round < 4; ++round) {
      const auto limit = rng.next_below(128);
      const std::int64_t expected = workload::visit_prefix(root.value(), limit);
      Session session(rt);
      auto sum =
          session.call<std::int64_t>(callee.id(), "visit", root.value(), limit);
      ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
      EXPECT_EQ(sum.value(), expected) << "limit " << limit;
      ASSERT_TRUE(session.end().is_ok());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sweep, ClosureEquivalence,
                         ::testing::Values(0, 64, 256, 1024, 4096, 1 << 20));

// ---------------------------------------------------------------------------
// Multi-space sweep: a random sequence of calls fanned across several
// spaces, each mutating the shared list; after every RETURN the home must
// equal the local oracle (the travelling modified set at work).
// ---------------------------------------------------------------------------

class MultiSpaceEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiSpaceEquivalence, RandomCallSequencesStayCoherent) {
  World world(fast_world());
  auto& ground = world.create_space("ground");
  std::vector<AddressSpace*> workers;
  for (int i = 0; i < 3; ++i) {
    workers.push_back(&world.create_space("worker" + std::to_string(i)));
  }
  workload::register_list_type(world).status().check();

  for (AddressSpace* w : workers) {
    w->bind("mutate",
            [](CallContext&, ListNode* head, std::uint32_t index,
               std::int64_t delta) -> std::int64_t {
              ListNode* n = head;
              for (std::uint32_t i = 0; i < index && n != nullptr; ++i) n = n->next;
              if (n == nullptr) return -1;
              n->value += delta;
              return n->value;
            })
        .check();
  }

  ground.run([&](Runtime& rt) {
    constexpr std::uint32_t kLength = 24;
    auto head = workload::build_list(rt, kLength, [](std::uint32_t i) {
      return static_cast<std::int64_t>(i);
    });
    head.status().check();
    std::vector<std::int64_t> oracle(kLength);
    for (std::uint32_t i = 0; i < kLength; ++i) oracle[i] = i;

    Rng rng(GetParam());
    Session session(rt);
    for (int step = 0; step < 40; ++step) {
      AddressSpace* target = workers[rng.next_below(workers.size())];
      const auto index = static_cast<std::uint32_t>(rng.next_below(kLength));
      const std::int64_t delta = rng.next_in(-50, 50);
      auto value = session.call<std::int64_t>(target->id(), "mutate", head.value(),
                                              index, delta);
      ASSERT_TRUE(value.is_ok()) << value.status().to_string();
      oracle[index] += delta;
      ASSERT_EQ(value.value(), oracle[index]) << "step " << step;
    }
    ASSERT_TRUE(session.end().is_ok());

    std::uint32_t i = 0;
    for (ListNode* n = head.value(); n != nullptr; n = n->next, ++i) {
      ASSERT_EQ(n->value, oracle[i]) << "node " << i;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sweep, MultiSpaceEquivalence,
                         ::testing::Values(21, 22, 23, 24));

}  // namespace
}  // namespace srpc
