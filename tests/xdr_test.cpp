// XDR codec: RFC-1014 wire format invariants and round trips.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/byte_buffer.hpp"
#include "common/rng.hpp"
#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace srpc::xdr {
namespace {

TEST(XdrPadding, RoundsToFourByteUnits) {
  EXPECT_EQ(padding(0), 0u);
  EXPECT_EQ(padding(1), 3u);
  EXPECT_EQ(padding(2), 2u);
  EXPECT_EQ(padding(3), 1u);
  EXPECT_EQ(padding(4), 0u);
  EXPECT_EQ(padded_size(5), 8u);
}

TEST(XdrEncoder, U32IsBigEndian) {
  ByteBuffer buf;
  Encoder enc(buf);
  enc.put_u32(0x01020304U);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.data()[0], 0x01);
  EXPECT_EQ(buf.data()[1], 0x02);
  EXPECT_EQ(buf.data()[2], 0x03);
  EXPECT_EQ(buf.data()[3], 0x04);
}

TEST(XdrEncoder, U64IsBigEndian) {
  ByteBuffer buf;
  Encoder enc(buf);
  enc.put_u64(0x0102030405060708ULL);
  ASSERT_EQ(buf.size(), 8u);
  EXPECT_EQ(buf.data()[0], 0x01);
  EXPECT_EQ(buf.data()[7], 0x08);
}

TEST(XdrEncoder, SignedNegativeRoundTrips) {
  ByteBuffer buf;
  Encoder enc(buf);
  enc.put_i32(-42);
  enc.put_i64(std::numeric_limits<std::int64_t>::min());
  Decoder dec(buf);
  EXPECT_EQ(dec.get_i32().value(), -42);
  EXPECT_EQ(dec.get_i64().value(), std::numeric_limits<std::int64_t>::min());
}

TEST(XdrEncoder, StringCarriesLengthAndPadding) {
  ByteBuffer buf;
  Encoder enc(buf);
  enc.put_string("hello");  // 4 (len) + 5 + 3 (pad)
  EXPECT_EQ(buf.size(), 12u);
  Decoder dec(buf);
  EXPECT_EQ(dec.get_string().value(), "hello");
  EXPECT_TRUE(dec.exhausted());
}

TEST(XdrEncoder, EmptyStringIsJustLength) {
  ByteBuffer buf;
  Encoder enc(buf);
  enc.put_string("");
  EXPECT_EQ(buf.size(), 4u);
  Decoder dec(buf);
  EXPECT_EQ(dec.get_string().value(), "");
}

TEST(XdrEncoder, OpaqueFixedPadsWithoutLength) {
  ByteBuffer buf;
  Encoder enc(buf);
  const std::uint8_t bytes[5] = {1, 2, 3, 4, 5};
  enc.put_opaque_fixed(bytes);
  EXPECT_EQ(buf.size(), 8u);
  Decoder dec(buf);
  auto out = dec.get_opaque_fixed(5);
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value(), std::vector<std::uint8_t>({1, 2, 3, 4, 5}));
  EXPECT_TRUE(dec.exhausted());
}

TEST(XdrEncoder, BoolEncodesAsWord) {
  ByteBuffer buf;
  Encoder enc(buf);
  enc.put_bool(true);
  enc.put_bool(false);
  EXPECT_EQ(buf.size(), 8u);
  Decoder dec(buf);
  EXPECT_TRUE(dec.get_bool().value());
  EXPECT_FALSE(dec.get_bool().value());
}

TEST(XdrDecoder, RejectsBadBool) {
  ByteBuffer buf;
  Encoder enc(buf);
  enc.put_u32(7);
  Decoder dec(buf);
  auto v = dec.get_bool();
  ASSERT_FALSE(v.is_ok());
  EXPECT_EQ(v.status().code(), StatusCode::kProtocolError);
}

TEST(XdrDecoder, RejectsTruncatedInput) {
  ByteBuffer buf;
  Encoder enc(buf);
  enc.put_u32(1);
  Decoder dec(buf);
  ASSERT_TRUE(dec.get_u32().is_ok());
  auto v = dec.get_u32();
  ASSERT_FALSE(v.is_ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
}

TEST(XdrDecoder, RejectsOversizedOpaque) {
  ByteBuffer buf;
  Encoder enc(buf);
  enc.put_u32(1U << 20);
  Decoder dec(buf);
  auto v = dec.get_opaque(/*max_len=*/16);
  ASSERT_FALSE(v.is_ok());
  EXPECT_EQ(v.status().code(), StatusCode::kProtocolError);
}

TEST(XdrEncoder, PatchU32BackfillsReservedSlot) {
  ByteBuffer buf;
  Encoder enc(buf);
  const std::size_t slot = enc.reserve_u32();
  enc.put_u32(0xAAAAAAAAU);
  enc.patch_u32(slot, 3);
  Decoder dec(buf);
  EXPECT_EQ(dec.get_u32().value(), 3u);
  EXPECT_EQ(dec.get_u32().value(), 0xAAAAAAAAU);
}

TEST(XdrFloat, SpecialValuesRoundTrip) {
  ByteBuffer buf;
  Encoder enc(buf);
  enc.put_f32(-0.0F);
  enc.put_f64(std::numeric_limits<double>::infinity());
  enc.put_f64(1.5e-300);
  Decoder dec(buf);
  const float neg_zero = dec.get_f32().value();
  EXPECT_EQ(neg_zero, 0.0F);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(dec.get_f64().value(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(dec.get_f64().value(), 1.5e-300);
}

// Property sweep: random scalars round-trip bit-exactly.
class XdrRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XdrRoundTrip, RandomScalars) {
  Rng rng(GetParam());
  ByteBuffer buf;
  Encoder enc(buf);
  std::vector<std::uint64_t> u64s;
  std::vector<std::int32_t> i32s;
  std::vector<double> f64s;
  for (int i = 0; i < 64; ++i) {
    u64s.push_back(rng.next());
    i32s.push_back(static_cast<std::int32_t>(rng.next()));
    f64s.push_back(rng.next_double() * 1e12 - 5e11);
    enc.put_u64(u64s.back());
    enc.put_i32(i32s.back());
    enc.put_f64(f64s.back());
  }
  Decoder dec(buf);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(dec.get_u64().value(), u64s[i]);
    EXPECT_EQ(dec.get_i32().value(), i32s[i]);
    EXPECT_EQ(dec.get_f64().value(), f64s[i]);
  }
  EXPECT_TRUE(dec.exhausted());
}

INSTANTIATE_TEST_SUITE_P(Seeds, XdrRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(ByteBuffer, CursorAndOverwrite) {
  ByteBuffer buf;
  buf.append_byte(1);
  buf.append_byte(2);
  const std::size_t at = buf.append_zeros(2);
  EXPECT_EQ(at, 2u);
  const std::uint8_t patch[2] = {9, 8};
  buf.overwrite(at, patch, 2);
  std::uint8_t out[4];
  ASSERT_TRUE(buf.read(out, 4).is_ok());
  EXPECT_EQ(out[2], 9);
  EXPECT_EQ(out[3], 8);
  EXPECT_TRUE(buf.exhausted());
  buf.reset_cursor();
  EXPECT_EQ(buf.remaining(), 4u);
}

}  // namespace
}  // namespace srpc::xdr
