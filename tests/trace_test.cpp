// Distributed tracing (src/obs): the trace context travelling in the wire
// header must stitch every space's spans into ONE causal tree — across a
// nested call + callback chain spanning three address spaces — and the
// tree must survive fault injection: a retransmitted request reuses the
// original span identity, so duplicate deliveries can never fork the tree.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/smart_rpc.hpp"
#include "net/fault_transport.hpp"
#include "rpc/wire.hpp"
#include "workload/list.hpp"

namespace srpc {
namespace {

using workload::ListNode;

// --- wire-level round trip -------------------------------------------------

TEST(TraceWireTest, FrameCarriesTraceContextWhenAttached) {
  Message msg;
  msg.type = MessageType::kCall;
  msg.from = 0;
  msg.to = 1;
  msg.session = 7;
  msg.seq = 42;
  msg.payload.append_byte(0x68);
  msg.payload.append_byte(0x69);
  msg.trace = TraceContext{0xAAA, 0xBBB, 0xCCC, 3};

  ByteBuffer wire;
  encode_frame(msg, wire);
  auto decoded = decode_frame(wire);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().type, MessageType::kCall);
  EXPECT_EQ(decoded.value().trace.trace_id, 0xAAAu);
  EXPECT_EQ(decoded.value().trace.span_id, 0xBBBu);
  EXPECT_EQ(decoded.value().trace.parent_span_id, 0xCCCu);
  EXPECT_EQ(decoded.value().trace.hop, 3u);
  EXPECT_EQ(decoded.value().payload.size(), 2u);
}

TEST(TraceWireTest, LegacyFrameDecodesWithEmptyContext) {
  Message msg;
  msg.type = MessageType::kFetch;
  msg.from = 2;
  msg.to = 0;
  msg.seq = 1;

  ByteBuffer wire;
  encode_frame(msg, wire);  // trace invalid -> no extension, no flag
  auto decoded = decode_frame(wire);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_FALSE(decoded.value().trace.valid());
}

TEST(TraceWireTest, TraceBytesChargedOnlyWhenAttached) {
  Message plain;
  plain.type = MessageType::kCall;
  Message traced = plain;
  traced.trace = TraceContext{1, 2, 0, 0};
  EXPECT_EQ(traced.wire_size(), plain.wire_size() + kTraceContextWireSize);
}

// --- cross-space span tree -------------------------------------------------

struct FlatSpans {
  std::vector<Span> all;
  std::map<std::uint64_t, const Span*> by_id;
};

FlatSpans flatten(World& world) {
  FlatSpans flat;
  for (auto& space_spans : world.collect_spans()) {
    for (auto& span : space_spans.spans) flat.all.push_back(span);
  }
  for (const auto& span : flat.all) flat.by_id[span.span_id] = &span;
  return flat;
}

bool any_span_named(const FlatSpans& flat, const std::string& needle) {
  for (const auto& span : flat.all) {
    if (span.name.find(needle) != std::string::npos) return true;
  }
  return false;
}

// Runs the §3.1 chain — A calls B, B calls C (nested), C calls back into A,
// C updates remote data so session end ships invalidations — and returns
// the merged spans.
FlatSpans run_chain(World& world) {
  auto& a = world.create_space("A");
  auto& b = world.create_space("B");
  auto& c = world.create_space("C");
  workload::register_list_type(world).status().check();
  const SpaceId a_id = a.id();
  const SpaceId c_id = c.id();

  c.bind("bump_and_report",
         [a_id](CallContext& ctx, ListNode* head) -> std::int64_t {
           std::int64_t sum = 0;
           for (ListNode* n = head; n != nullptr; n = n->next) {
             n->value += 100;
             sum += n->value;
           }
           auto ack = typed_call<std::int64_t>(ctx.runtime, a_id, "notify", sum);
           ack.status().check();
           return sum;
         })
      .check();
  b.bind("forward",
         [c_id](CallContext& ctx, ListNode* head) -> std::int64_t {
           auto sum =
               typed_call<std::int64_t>(ctx.runtime, c_id, "bump_and_report", head);
           sum.status().check();
           return sum.value();
         })
      .check();

  a.run([&](Runtime& rt) {
    auto head = workload::build_list(
        rt, 5, [](std::uint32_t i) { return static_cast<std::int64_t>(i + 1); });
    head.status().check();
    bind_procedure(rt, "notify",
                   [](CallContext&, std::int64_t sum) -> std::int64_t { return sum; })
        .check();
    Session session(rt);
    auto sum = session.call<std::int64_t>(b.id(), "forward", head.value());
    sum.status().check();
    session.end().check();
    return 0;
  });
  return flatten(world);
}

void expect_one_connected_tree(const FlatSpans& flat) {
  ASSERT_FALSE(flat.all.empty());

  // Exactly one trace, exactly one root.
  const std::uint64_t trace = flat.all.front().trace_id;
  std::size_t roots = 0;
  for (const auto& span : flat.all) {
    EXPECT_EQ(span.trace_id, trace) << span.name;
    EXPECT_FALSE(span.open) << span.name;
    if (span.parent_span_id == 0) {
      ++roots;
      EXPECT_EQ(span.category, "session") << span.name;
    }
  }
  EXPECT_EQ(roots, 1u);

  // Every non-root span's parent exists, in the same trace, and started
  // no later than its child (the causal order the tree claims).
  for (const auto& span : flat.all) {
    if (span.parent_span_id == 0) continue;
    auto parent = flat.by_id.find(span.parent_span_id);
    ASSERT_NE(parent, flat.by_id.end())
        << span.name << " orphaned (parent " << span.parent_span_id << ")";
    EXPECT_EQ(parent->second->trace_id, span.trace_id);
    EXPECT_LE(parent->second->start_ns, span.start_ns);
  }
}

TEST(TraceTreeTest, NestedCallAndCallbackFormOneTreeAcrossThreeSpaces) {
  WorldOptions options;
  options.cost = CostModel::zero();
  options.cache.closure_bytes = 0;  // force explicit FETCH traffic
  options.tracing = true;
  World world(options);
  FlatSpans flat = run_chain(world);

  expect_one_connected_tree(flat);

  // Spans exist on all three spaces (the recorder ids embed the space).
  std::map<std::uint64_t, int> spans_per_space;
  for (const auto& span : flat.all) ++spans_per_space[span.span_id >> 40];
  EXPECT_EQ(spans_per_space.size(), 3u);

  // Every wire kind the chain exercises shows up as a server span.
  EXPECT_TRUE(any_span_named(flat, "serve CALL"));
  EXPECT_TRUE(any_span_named(flat, "serve FETCH"));
  EXPECT_TRUE(any_span_named(flat, "serve INVALIDATE"));
  // And the client side of the nested chain.
  EXPECT_TRUE(any_span_named(flat, "CALL -> "));

  // Hops grow along the chain: A(0) -> B -> C -> A again is >= 3 transfers.
  std::uint32_t max_hop = 0;
  for (const auto& span : flat.all) max_hop = std::max(max_hop, span.hop);
  EXPECT_GE(max_hop, 3u);
}

TEST(TraceTreeTest, TracingDisabledRecordsNothing) {
  WorldOptions options;
  options.cost = CostModel::zero();
  options.cache.closure_bytes = 0;
  options.tracing = false;
  World world(options);
  FlatSpans flat = run_chain(world);
  EXPECT_TRUE(flat.all.empty());
}

TEST(TraceTreeTest, RetransmitsDoNotForkTheTree) {
  WorldOptions options;
  options.cost = CostModel::zero();
  options.cache.closure_bytes = 0;
  options.tracing = true;
  options.fault_injection = true;
  options.timeouts = TimeoutConfig::aggressive();
  World world(options);

  // Lose the first FETCH request and the first FETCH_REPLY: the client
  // retransmits (the copied original message — same span identity on the
  // wire) and the server's dedup absorbs any replays, so the span tree
  // must come out exactly as connected as the healthy run's.
  world.fault()->drop_next(MessageType::kFetch, 1);
  world.fault()->drop_next(MessageType::kFetchReply, 1);

  FlatSpans flat = run_chain(world);
  world.fault()->disarm();

  expect_one_connected_tree(flat);

  // The faults really fired and really caused retransmits.
  EXPECT_GE(world.fault()->stats().dropped, 2u);

  // Request-id dedup means each non-idempotent request (CALL) is served at
  // most once: a duplicate serve-span under one parent would mean the tree
  // forked on a replay. (Replayed idempotent FETCHes may legitimately be
  // served twice — those become siblings, which is still one tree.)
  std::map<std::string, int> serve_calls;
  for (const auto& span : flat.all) {
    if (span.category != "rpc.server" || span.name != "serve CALL") continue;
    ++serve_calls[std::to_string(span.parent_span_id)];
  }
  for (const auto& [parent, count] : serve_calls) {
    EXPECT_EQ(count, 1) << "duplicate serve CALL under parent " << parent;
  }
}

TEST(TraceTreeTest, PipelinedAsyncCollectionStaysOneTree) {
  WorldOptions options;
  options.cost = CostModel::zero();
  options.cache.closure_bytes = 0;
  options.tracing = true;
  World world(options);
  auto& a = world.create_space("A");
  auto& b = world.create_space("B");
  auto& c = world.create_space("C");
  b.bind("echo", [](CallContext&, std::int64_t v) -> std::int64_t { return v; })
      .check();
  c.bind("negate",
         [](CallContext&, std::int64_t v) -> std::int64_t { return -v; })
      .check();

  // Three calls on the wire at once, against two peers, collected in
  // reverse issue order: completions run on whichever pump happens to be
  // active, yet every async client span must stay parented to the issuing
  // session — out-of-order collection may not re-parent one call under
  // another or fork a second trace.
  a.run([&](Runtime& rt) {
    Session session(rt);
    auto f1 = session.call_async<std::int64_t>(b.id(), "echo", std::int64_t{1});
    auto f2 =
        session.call_async<std::int64_t>(c.id(), "negate", std::int64_t{2});
    auto f3 = session.call_async<std::int64_t>(b.id(), "echo", std::int64_t{3});
    f1.status().check();
    f2.status().check();
    f3.status().check();
    f3.value().get().status().check();
    f2.value().get().status().check();
    f1.value().get().status().check();
    session.end().check();
    return 0;
  });

  FlatSpans flat = flatten(world);
  expect_one_connected_tree(flat);

  // All three async client spans are siblings directly under the session
  // root, regardless of completion order.
  std::size_t async_clients = 0;
  for (const auto& span : flat.all) {
    if (span.category != "rpc.client" || span.name.find("CALL -> ") != 0) {
      continue;
    }
    ++async_clients;
    auto parent = flat.by_id.find(span.parent_span_id);
    ASSERT_NE(parent, flat.by_id.end()) << span.name;
    EXPECT_EQ(parent->second->category, "session")
        << span.name << " re-parented under " << parent->second->name;
  }
  EXPECT_EQ(async_clients, 3u);
}

}  // namespace
}  // namespace srpc
