// Virtual-memory substrate: arenas, protection, fault dispatch.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "vm/fault_dispatcher.hpp"
#include "vm/page_arena.hpp"
#include "vm/page_table.hpp"
#include "vm/protection.hpp"

namespace srpc {
namespace {

TEST(PageArena, CreateAndAddressing) {
  auto arena = PageArena::create(8, 4096);
  ASSERT_TRUE(arena.is_ok()) << arena.status().to_string();
  PageArena a = std::move(arena).value();
  EXPECT_EQ(a.page_count(), 8u);
  EXPECT_EQ(a.byte_size(), 8u * 4096u);
  EXPECT_TRUE(a.contains(a.base()));
  EXPECT_TRUE(a.contains(a.base() + a.byte_size() - 1));
  EXPECT_FALSE(a.contains(a.base() + a.byte_size()));
  EXPECT_EQ(a.page_of(a.base() + 4096), 1u);
  EXPECT_EQ(a.page_of(a.base() + 4095), 0u);
  EXPECT_EQ(a.page_of(nullptr), kInvalidPage);
}

TEST(PageArena, RejectsBadPageSize) {
  auto arena = PageArena::create(1, 1000);
  ASSERT_FALSE(arena.is_ok());
  EXPECT_EQ(arena.status().code(), StatusCode::kInvalidArgument);
}

TEST(PageArena, ProtectionTransitionsAllowAccess) {
  auto arena = PageArena::create(2, 4096);
  ASSERT_TRUE(arena.is_ok());
  PageArena a = std::move(arena).value();
  ASSERT_TRUE(a.protect(0, PageProtection::kReadWrite).is_ok());
  std::memset(a.page_base(0), 0xAB, 4096);
  EXPECT_EQ(a.page_base(0)[100], 0xAB);
  ASSERT_TRUE(a.protect(0, PageProtection::kRead).is_ok());
  EXPECT_EQ(a.page_base(0)[100], 0xAB);  // reads still fine
}

TEST(PageTable, LegalTransitions) {
  PageTable table(4);
  EXPECT_TRUE(table.transition(0, PageState::kAllocated).is_ok());
  EXPECT_TRUE(table.transition(0, PageState::kClean).is_ok());
  EXPECT_TRUE(table.info(0).sealed);
  EXPECT_TRUE(table.transition(0, PageState::kDirty).is_ok());
  EXPECT_TRUE(table.transition(0, PageState::kClean).is_ok());
}

TEST(PageTable, IllegalTransitionsRejected) {
  PageTable table(4);
  EXPECT_FALSE(table.transition(0, PageState::kClean).is_ok());   // empty -> clean
  EXPECT_FALSE(table.transition(0, PageState::kDirty).is_ok());   // empty -> dirty
  ASSERT_TRUE(table.transition(0, PageState::kAllocated).is_ok());
  EXPECT_FALSE(table.transition(0, PageState::kAllocated).is_ok());
  EXPECT_FALSE(table.transition(9, PageState::kAllocated).is_ok());  // out of range
}

TEST(PageTable, AllocPagesDoNotSeal) {
  PageTable table(2);
  table.info(0).kind = PageKind::kAlloc;
  ASSERT_TRUE(table.transition(0, PageState::kAllocated).is_ok());
  ASSERT_TRUE(table.transition(0, PageState::kDirty).is_ok());
  EXPECT_FALSE(table.info(0).sealed);
}

TEST(PageTable, ResetClearsEverything) {
  PageTable table(2);
  ASSERT_TRUE(table.transition(1, PageState::kAllocated).is_ok());
  table.info(1).bump = 100;
  table.reset();
  EXPECT_EQ(table.info(1).state, PageState::kEmpty);
  EXPECT_EQ(table.info(1).bump, 0u);
  EXPECT_EQ(table.pages_in_state(PageState::kAllocated).size(), 0u);
}

// A fault handler that fills the page with a marker and opens it.
class FillOnFault final : public FaultHandler {
 public:
  explicit FillOnFault(PageArena& arena) : arena_(arena) {}

  bool on_fault(void* addr, FaultAccess access) override {
    last_access_ = access;
    const PageIndex page = arena_.page_of(addr);
    if (page == kInvalidPage) return false;
    if (!arena_.protect(page, PageProtection::kReadWrite).is_ok()) return false;
    std::memset(arena_.page_base(page), 0x5A, arena_.page_size());
    ++faults_;
    return true;
  }

  int faults() const { return faults_; }
  FaultAccess last_access() const { return last_access_; }

 private:
  PageArena& arena_;
  int faults_ = 0;
  FaultAccess last_access_ = FaultAccess::kUnknown;
};

TEST(FaultDispatcher, ResolvesReadFaultAndRestartsInstruction) {
  auto arena_or = PageArena::create(4, 4096);
  ASSERT_TRUE(arena_or.is_ok());
  PageArena arena = std::move(arena_or).value();
  FillOnFault handler(arena);
  ASSERT_TRUE(FaultDispatcher::instance()
                  .register_range(arena.base(), arena.byte_size(), &handler)
                  .is_ok());

  volatile std::uint8_t* p = arena.page_base(2) + 17;
  const std::uint8_t value = *p;  // faults, handler fills page, retry reads
  EXPECT_EQ(value, 0x5A);
  EXPECT_EQ(handler.faults(), 1);
#if defined(__x86_64__)
  EXPECT_EQ(handler.last_access(), FaultAccess::kRead);
#endif

  // Second read: no further fault.
  const std::uint8_t again = *p;
  EXPECT_EQ(again, 0x5A);
  EXPECT_EQ(handler.faults(), 1);

  ASSERT_TRUE(FaultDispatcher::instance().unregister_range(arena.base()).is_ok());
}

TEST(FaultDispatcher, ClassifiesWriteFaults) {
  auto arena_or = PageArena::create(1, 4096);
  ASSERT_TRUE(arena_or.is_ok());
  PageArena arena = std::move(arena_or).value();
  FillOnFault handler(arena);
  ASSERT_TRUE(FaultDispatcher::instance()
                  .register_range(arena.base(), arena.byte_size(), &handler)
                  .is_ok());

  arena.page_base(0)[0] = 1;  // write fault on PROT_NONE
  EXPECT_EQ(handler.faults(), 1);
#if defined(__x86_64__)
  EXPECT_EQ(handler.last_access(), FaultAccess::kWrite);
#endif
  EXPECT_EQ(arena.page_base(0)[0], 1);

  ASSERT_TRUE(FaultDispatcher::instance().unregister_range(arena.base()).is_ok());
}

TEST(FaultDispatcher, TracksRegistrations) {
  auto arena_or = PageArena::create(1, 4096);
  ASSERT_TRUE(arena_or.is_ok());
  PageArena arena = std::move(arena_or).value();
  FillOnFault handler(arena);
  const std::size_t before = FaultDispatcher::instance().range_count();
  ASSERT_TRUE(FaultDispatcher::instance()
                  .register_range(arena.base(), arena.byte_size(), &handler)
                  .is_ok());
  EXPECT_EQ(FaultDispatcher::instance().range_count(), before + 1);
  ASSERT_TRUE(FaultDispatcher::instance().unregister_range(arena.base()).is_ok());
  EXPECT_EQ(FaultDispatcher::instance().range_count(), before);
  EXPECT_FALSE(FaultDispatcher::instance().unregister_range(arena.base()).is_ok());
}

TEST(FaultDispatcher, RejectsBadRegistrations) {
  EXPECT_FALSE(
      FaultDispatcher::instance().register_range(nullptr, 10, nullptr).is_ok());
}

}  // namespace
}  // namespace srpc
