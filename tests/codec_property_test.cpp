// Property sweeps over the value codec: random values in randomly composed
// struct types must round-trip bit-exactly through the canonical form on
// the host, and convert losslessly host -> canonical -> foreign -> canonical
// -> host (the full heterogeneity path).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "types/type_registry.hpp"
#include "types/value_codec.hpp"
#include "types/value_view.hpp"

namespace srpc {
namespace {

constexpr ScalarType kScalarPool[] = {
    ScalarType::kI8,  ScalarType::kU8,  ScalarType::kI16, ScalarType::kU16,
    ScalarType::kI32, ScalarType::kU32, ScalarType::kI64, ScalarType::kU64,
    ScalarType::kF32, ScalarType::kF64, ScalarType::kBool,
};

class CodecProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  CodecProperty() : layouts_(registry_), codec_{registry_, layouts_} {}

  // Builds a random flat struct type of 1..10 scalar fields.
  TypeId random_struct(Rng& rng, int tag) {
    const int field_count = 1 + static_cast<int>(rng.next_below(10));
    std::vector<FieldDescriptor> fields;
    for (int i = 0; i < field_count; ++i) {
      const ScalarType s = kScalarPool[rng.next_below(std::size(kScalarPool))];
      fields.push_back({"f" + std::to_string(i), TypeRegistry::scalar_id(s)});
    }
    auto id = registry_.register_struct("S" + std::to_string(tag), std::move(fields));
    id.status().check();
    return id.value();
  }

  // Fills an image (for `arch`) with random values via the view; returns
  // the normalised field values for later comparison.
  std::vector<std::int64_t> randomise(Rng& rng, const ArchModel& arch, TypeId type,
                                      void* image) {
    const TypeDescriptor& desc = registry_.get(type);
    std::vector<std::int64_t> snapshot;
    ValueView view(registry_, layouts_, arch, type, image);
    for (const auto& field : desc.fields()) {
      auto fv = view.field(field.name).value();
      const ScalarType s = registry_.get(field.type).scalar();
      if (s == ScalarType::kF32) {
        const float x = static_cast<float>(rng.next_in(-1000000, 1000000)) / 8.0F;
        fv.set_float(x).check();
        snapshot.push_back(static_cast<std::int64_t>(x * 8));
      } else if (s == ScalarType::kF64) {
        const double x = static_cast<double>(rng.next_in(-1000000, 1000000)) / 16.0;
        fv.set_float(x).check();
        snapshot.push_back(static_cast<std::int64_t>(x * 16));
      } else if (s == ScalarType::kBool) {
        const bool b = rng.next_bool(0.5);
        fv.set_int(b ? 1 : 0).check();
        snapshot.push_back(b ? 1 : 0);
      } else {
        // Clamp into the field's own range, sign-correct.
        const std::uint32_t bits = scalar_size(s) * 8;
        std::int64_t v = static_cast<std::int64_t>(rng.next());
        if (bits < 64) {
          const std::int64_t mask = (1LL << bits) - 1;
          v &= mask;
          const bool is_signed = s == ScalarType::kI8 || s == ScalarType::kI16 ||
                                 s == ScalarType::kI32;
          if (is_signed && (v & (1LL << (bits - 1)))) v -= (1LL << bits);
        }
        fv.set_int(v).check();
        snapshot.push_back(fv.get_int().value());
      }
    }
    return snapshot;
  }

  std::vector<std::int64_t> read_back(const ArchModel& arch, TypeId type, void* image) {
    const TypeDescriptor& desc = registry_.get(type);
    std::vector<std::int64_t> out;
    ValueView view(registry_, layouts_, arch, type, image);
    for (const auto& field : desc.fields()) {
      auto fv = view.field(field.name).value();
      const ScalarType s = registry_.get(field.type).scalar();
      if (s == ScalarType::kF32) {
        out.push_back(static_cast<std::int64_t>(fv.get_float().value() * 8));
      } else if (s == ScalarType::kF64) {
        out.push_back(static_cast<std::int64_t>(fv.get_float().value() * 16));
      } else {
        out.push_back(fv.get_int().value());
      }
    }
    return out;
  }

  TypeRegistry registry_;
  LayoutEngine layouts_;
  ValueCodec codec_;
};

TEST_P(CodecProperty, HostRoundTripIsExact) {
  Rng rng(GetParam());
  for (int round = 0; round < 8; ++round) {
    const TypeId type = random_struct(rng, round);
    const std::uint64_t size = layouts_.size_of(host_arch(), type);
    std::vector<std::uint8_t> in(size, 0);
    std::vector<std::uint8_t> out(size, 0xFF);
    const auto expected = randomise(rng, host_arch(), type, in.data());

    ByteBuffer wire;
    xdr::Encoder enc(wire);
    NullOnlyFieldCodec no_pointers;
    ASSERT_TRUE(codec_.encode(host_arch(), type, in.data(), enc, no_pointers).is_ok());
    // Wire size is exactly the deterministic prediction.
    EXPECT_EQ(wire.size(), codec_.wire_size(type).value());

    xdr::Decoder dec(wire);
    ASSERT_TRUE(codec_.decode(host_arch(), type, out.data(), dec, no_pointers).is_ok());
    EXPECT_TRUE(dec.exhausted());
    EXPECT_EQ(read_back(host_arch(), type, out.data()), expected);
  }
}

TEST_P(CodecProperty, HostToSparcAndBackIsLossless) {
  Rng rng(GetParam() * 977 + 3);
  for (int round = 0; round < 8; ++round) {
    const TypeId type = random_struct(rng, 100 + round);
    std::vector<std::uint8_t> host_in(layouts_.size_of(host_arch(), type), 0);
    const auto expected = randomise(rng, host_arch(), type, host_in.data());

    NullOnlyFieldCodec no_pointers;
    // host -> canonical -> sparc image
    ByteBuffer wire1;
    {
      xdr::Encoder enc(wire1);
      ASSERT_TRUE(
          codec_.encode(host_arch(), type, host_in.data(), enc, no_pointers).is_ok());
    }
    std::vector<std::uint8_t> sparc(layouts_.size_of(sparc32_arch(), type), 0);
    {
      xdr::Decoder dec(wire1);
      ASSERT_TRUE(
          codec_.decode(sparc32_arch(), type, sparc.data(), dec, no_pointers).is_ok());
    }
    // The foreign image reads the same through the descriptor...
    EXPECT_EQ(read_back(sparc32_arch(), type, sparc.data()), expected);

    // ...and converts back to an identical host value.
    ByteBuffer wire2;
    {
      xdr::Encoder enc(wire2);
      ASSERT_TRUE(
          codec_.encode(sparc32_arch(), type, sparc.data(), enc, no_pointers).is_ok());
    }
    std::vector<std::uint8_t> host_out(host_in.size(), 0);
    {
      xdr::Decoder dec(wire2);
      ASSERT_TRUE(
          codec_.decode(host_arch(), type, host_out.data(), dec, no_pointers).is_ok());
    }
    EXPECT_EQ(read_back(host_arch(), type, host_out.data()), expected);
    // Canonical forms must agree bit for bit regardless of source arch.
    ASSERT_EQ(wire1.size(), wire2.size());
    EXPECT_EQ(std::memcmp(wire1.data(), wire2.data(), wire1.size()), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace srpc
