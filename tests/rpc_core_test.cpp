// End-to-end smart RPC: transparent remote pointers over the simulated
// network, with real SIGSEGV-driven fetching underneath.
#include <gtest/gtest.h>

#include "baselines/eager_rpc.hpp"
#include "baselines/lazy_rpc.hpp"
#include "core/smart_rpc.hpp"
#include "workload/graph.hpp"
#include "workload/list.hpp"
#include "workload/tree.hpp"

namespace srpc {
namespace {

using workload::GraphNode;
using workload::ListNode;
using workload::TreeNode;

WorldOptions fast_world() {
  WorldOptions options;
  options.cost = CostModel::zero();
  options.cache.page_count = 4096;
  return options;
}

class SmartRpcTest : public ::testing::Test {
 protected:
  SmartRpcTest() : world_(fast_world()) {
    caller_ = &world_.create_space("caller");
    callee_ = &world_.create_space("callee");
    workload::register_tree_type(world_).status().check();
    workload::register_list_type(world_).status().check();
    workload::register_graph_type(world_).status().check();
  }

  World world_;
  AddressSpace* caller_ = nullptr;
  AddressSpace* callee_ = nullptr;
};

TEST_F(SmartRpcTest, ScalarCallRoundTrip) {
  ASSERT_TRUE(callee_
                  ->bind("add",
                         [](CallContext&, std::int32_t a, std::int64_t b) -> std::int64_t {
                           return a + b;
                         })
                  .is_ok());
  caller_->run([&](Runtime& rt) {
    Session session(rt);
    auto sum = session.call<std::int64_t>(callee_->id(), "add", 40, std::int64_t{2});
    ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
    EXPECT_EQ(sum.value(), 42);
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(SmartRpcTest, StringArgumentsRoundTrip) {
  ASSERT_TRUE(callee_
                  ->bind("greet",
                         [](CallContext&, std::string name) -> std::string {
                           return "hello " + name;
                         })
                  .is_ok());
  caller_->run([&](Runtime& rt) {
    Session session(rt);
    auto reply = session.call<std::string>(callee_->id(), "greet", std::string("paper"));
    ASSERT_TRUE(reply.is_ok());
    EXPECT_EQ(reply.value(), "hello paper");
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(SmartRpcTest, UnknownProcedureReportsRemoteError) {
  caller_->run([&](Runtime& rt) {
    Session session(rt);
    auto reply = session.call<std::int64_t>(callee_->id(), "missing", 1);
    ASSERT_FALSE(reply.is_ok());
    EXPECT_EQ(reply.status().code(), StatusCode::kNotFound);
    ASSERT_TRUE(session.end().is_ok());
  });
}

// The core of the paper: a pointer argument dereferenced transparently.
TEST_F(SmartRpcTest, RemoteListSumThroughSwizzledPointer) {
  ASSERT_TRUE(callee_
                  ->bind("sum",
                         [](CallContext&, ListNode* head) -> std::int64_t {
                           return workload::sum_list(head);
                         })
                  .is_ok());
  caller_->run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 100, [](std::uint32_t i) {
      return static_cast<std::int64_t>(i) * 3;
    });
    ASSERT_TRUE(head.is_ok());
    const std::int64_t expected = workload::sum_list(head.value());

    Session session(rt);
    auto sum = session.call<std::int64_t>(callee_->id(), "sum", head.value());
    ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
    EXPECT_EQ(sum.value(), expected);
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(SmartRpcTest, NullPointerArgumentStaysNull) {
  ASSERT_TRUE(callee_
                  ->bind("is_null",
                         [](CallContext&, ListNode* head) -> bool {
                           return head == nullptr;
                         })
                  .is_ok());
  caller_->run([&](Runtime& rt) {
    Session session(rt);
    auto null_seen =
        session.call<bool>(callee_->id(), "is_null", static_cast<ListNode*>(nullptr));
    ASSERT_TRUE(null_seen.is_ok());
    EXPECT_TRUE(null_seen.value());
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(SmartRpcTest, RemoteTreeSearchMatchesLocal) {
  ASSERT_TRUE(callee_
                  ->bind("visit",
                         [](CallContext&, TreeNode* root, std::uint64_t limit)
                             -> std::int64_t { return workload::visit_prefix(root, limit); })
                  .is_ok());
  caller_->run([&](Runtime& rt) {
    auto root = workload::build_complete_tree(rt, 1023);
    ASSERT_TRUE(root.is_ok());
    const std::int64_t expected = workload::visit_prefix(root.value(), 600);

    Session session(rt);
    auto sum = session.call<std::int64_t>(callee_->id(), "visit", root.value(),
                                          std::uint64_t{600});
    ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
    EXPECT_EQ(sum.value(), expected);
    ASSERT_TRUE(session.end().is_ok());
  });
}

// Once fetched, re-access is pure memory: fetch count must not grow.
TEST_F(SmartRpcTest, CachingAvoidsRefetch) {
  ASSERT_TRUE(callee_
                  ->bind("visit_twice",
                         [](CallContext& ctx, TreeNode* root) -> std::int64_t {
                           const auto& stats = ctx.runtime.cache().stats();
                           const std::int64_t first = workload::visit_prefix(root, 1 << 20);
                           const std::uint64_t fetches_after_first = stats.fetches;
                           const std::int64_t second = workload::visit_prefix(root, 1 << 20);
                           EXPECT_EQ(stats.fetches, fetches_after_first);
                           EXPECT_EQ(first, second);
                           return second;
                         })
                  .is_ok());
  caller_->run([&](Runtime& rt) {
    auto root = workload::build_complete_tree(rt, 255);
    ASSERT_TRUE(root.is_ok());
    Session session(rt);
    auto sum = session.call<std::int64_t>(callee_->id(), "visit_twice", root.value());
    ASSERT_TRUE(sum.is_ok());
    EXPECT_EQ(sum.value(), workload::visit_prefix(root.value(), 1 << 20));
    ASSERT_TRUE(session.end().is_ok());
  });
}

// Coherency: callee updates travel back with the RETURN (paper §3.4).
TEST_F(SmartRpcTest, CalleeWritesReachTheHomeOnReturn) {
  ASSERT_TRUE(callee_
                  ->bind("scale",
                         [](CallContext&, ListNode* head, std::int64_t factor)
                             -> std::int64_t {
                           workload::scale_list(head, factor);
                           return workload::sum_list(head);
                         })
                  .is_ok());
  caller_->run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 64, [](std::uint32_t i) {
      return static_cast<std::int64_t>(i + 1);
    });
    ASSERT_TRUE(head.is_ok());
    const std::int64_t before = workload::sum_list(head.value());

    Session session(rt);
    auto remote_sum =
        session.call<std::int64_t>(callee_->id(), "scale", head.value(), std::int64_t{3});
    ASSERT_TRUE(remote_sum.is_ok()) << remote_sum.status().to_string();
    EXPECT_EQ(remote_sum.value(), before * 3);
    // The modified data set travelled back with the RETURN and was applied
    // to the original list in our heap.
    EXPECT_EQ(workload::sum_list(head.value()), before * 3);
    ASSERT_TRUE(session.end().is_ok());
  });
}

// A pointer returned from the callee is swizzled on the caller and works.
TEST_F(SmartRpcTest, ReturnedRemotePointerIsDereferenceable) {
  ASSERT_TRUE(callee_
                  ->bind("make_list",
                         [](CallContext& ctx, std::int32_t n) -> ListNode* {
                           auto head = workload::build_list(
                               ctx.runtime, static_cast<std::uint32_t>(n),
                               [](std::uint32_t i) {
                                 return static_cast<std::int64_t>(i) * 5;
                               });
                           head.status().check();
                           return head.value();
                         })
                  .is_ok());
  caller_->run([&](Runtime& rt) {
    Session session(rt);
    auto head = session.call<ListNode*>(callee_->id(), "make_list", 20);
    ASSERT_TRUE(head.is_ok()) << head.status().to_string();
    ASSERT_NE(head.value(), nullptr);
    // Dereference the remote pointer like a local one.
    EXPECT_EQ(workload::sum_list(head.value()), 5 * (19 * 20 / 2));
    ASSERT_TRUE(session.end().is_ok());
  });
}

// Nested RPC through a third space: A -> B -> C with the pointer passed on.
TEST_F(SmartRpcTest, NestedCallForwardsRemotePointer) {
  AddressSpace& middle = world_.create_space("middle");
  ASSERT_TRUE(callee_
                  ->bind("final_sum",
                         [](CallContext&, ListNode* head) -> std::int64_t {
                           return workload::sum_list(head);
                         })
                  .is_ok());
  const SpaceId callee_id = callee_->id();
  ASSERT_TRUE(middle
                  .bind("forward",
                        [callee_id](CallContext& ctx, ListNode* head) -> std::int64_t {
                          auto sum = typed_call<std::int64_t>(ctx.runtime, callee_id,
                                                              "final_sum", head);
                          sum.status().check();
                          return sum.value();
                        })
                  .is_ok());
  caller_->run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 40, [](std::uint32_t i) {
      return static_cast<std::int64_t>(i * i);
    });
    ASSERT_TRUE(head.is_ok());
    const std::int64_t expected = workload::sum_list(head.value());
    Session session(rt);
    auto sum = session.call<std::int64_t>(middle.id(), "forward", head.value());
    ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
    EXPECT_EQ(sum.value(), expected);
    ASSERT_TRUE(session.end().is_ok());
  });
}

// Callback: the callee remotely calls its caller mid-procedure (paper §3.1).
TEST_F(SmartRpcTest, CallbackIntoBlockedCaller) {
  const SpaceId caller_id = caller_->id();
  ASSERT_TRUE(callee_
                  ->bind("with_callback",
                         [caller_id](CallContext& ctx, std::int64_t x) -> std::int64_t {
                           auto doubled = typed_call<std::int64_t>(
                               ctx.runtime, caller_id, "double_it", x);
                           doubled.status().check();
                           return doubled.value() + 1;
                         })
                  .is_ok());
  ASSERT_TRUE(caller_
                  ->bind("double_it",
                         [](CallContext&, std::int64_t x) -> std::int64_t { return 2 * x; })
                  .is_ok());
  caller_->run([&](Runtime& rt) {
    Session session(rt);
    auto result =
        session.call<std::int64_t>(callee_->id(), "with_callback", std::int64_t{21});
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_EQ(result.value(), 43);
    ASSERT_TRUE(session.end().is_ok());
  });
}

// Cycles and sharing: the allocation table deduplicates by identity.
TEST_F(SmartRpcTest, CyclicGraphTraversalTerminates) {
  ASSERT_TRUE(callee_
                  ->bind("graph_sum",
                         [](CallContext&, GraphNode* root) -> std::int64_t {
                           return workload::sum_reachable(root);
                         })
                  .is_ok());
  caller_->run([&](Runtime& rt) {
    workload::GraphSpec spec;
    spec.node_count = 200;
    spec.allow_cycles = true;
    spec.seed = 99;
    auto root = workload::build_graph(rt, spec);
    ASSERT_TRUE(root.is_ok());
    const std::int64_t expected = workload::sum_reachable(root.value());

    Session session(rt);
    auto sum = session.call<std::int64_t>(callee_->id(), "graph_sum", root.value());
    ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
    EXPECT_EQ(sum.value(), expected);
    ASSERT_TRUE(session.end().is_ok());
  });
}

// extended_malloc: build a structure remotely; the home materialises it.
TEST_F(SmartRpcTest, ExtendedMallocBuildsRemoteList) {
  ASSERT_TRUE(callee_
                  ->bind("local_sum",
                         [](CallContext& ctx, ListNode* head) -> std::int64_t {
                           // At the callee this is now HOME data.
                           (void)ctx;
                           return workload::sum_list(head);
                         })
                  .is_ok());
  caller_->run([&](Runtime& rt) {
    Session session(rt);
    // Build a 10-node list in the CALLEE's heap without ever calling it.
    ListNode* head = nullptr;
    ListNode* tail = nullptr;
    for (int i = 0; i < 10; ++i) {
      auto node = session.extended_malloc<ListNode>(callee_->id());
      ASSERT_TRUE(node.is_ok()) << node.status().to_string();
      node.value()->value = i + 1;
      node.value()->next = nullptr;
      if (tail == nullptr) {
        head = node.value();
      } else {
        tail->next = node.value();
      }
      tail = node.value();
    }
    // Pass the locally-built remote list to its own home.
    auto sum = session.call<std::int64_t>(callee_->id(), "local_sum", head);
    ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
    EXPECT_EQ(sum.value(), 55);
    ASSERT_TRUE(session.end().is_ok());
  });
  // After the session the callee's heap owns the ten nodes.
  callee_->run([&](Runtime& rt) {
    EXPECT_EQ(rt.heap().live_allocations(), 10u);
    return 0;
  });
}

TEST_F(SmartRpcTest, ExtendedFreeCancelsUnflushedAllocation) {
  caller_->run([&](Runtime& rt) {
    Session session(rt);
    auto node = session.extended_malloc<ListNode>(callee_->id());
    ASSERT_TRUE(node.is_ok());
    ASSERT_TRUE(session.extended_free(node.value()).is_ok());
    ASSERT_TRUE(session.end().is_ok());
  });
  callee_->run([&](Runtime& rt) {
    EXPECT_EQ(rt.heap().live_allocations(), 0u);
    return 0;
  });
}

// Session end: write-back reaches homes even without further calls.
TEST_F(SmartRpcTest, SessionEndWritesBackDirtyData) {
  ASSERT_TRUE(callee_
                  ->bind("give_list",
                         [](CallContext& ctx, std::int32_t n) -> ListNode* {
                           auto head = workload::build_list(
                               ctx.runtime, static_cast<std::uint32_t>(n),
                               [](std::uint32_t) { return std::int64_t{1}; });
                           head.status().check();
                           return head.value();
                         })
                  .is_ok());
  ListNode* remote_head = nullptr;
  caller_->run([&](Runtime& rt) {
    Session session(rt);
    auto head = session.call<ListNode*>(callee_->id(), "give_list", 8);
    ASSERT_TRUE(head.is_ok());
    remote_head = head.value();
    workload::scale_list(remote_head, 7);  // dirty the cache
    ASSERT_TRUE(session.end().is_ok());    // write-back + invalidate
  });
  callee_->run([&](Runtime& rt) {
    // Find the list in the callee heap and check the write-back landed.
    // give_list allocated 8 nodes; all should now hold 7.
    EXPECT_EQ(rt.heap().live_allocations(), 8u);
    return 0;
  });
}

// The fully-lazy baseline: explicit callbacks, one per dereference.
TEST_F(SmartRpcTest, LazyBaselineCallbacksPerDereference) {
  ASSERT_TRUE(callee_
                  ->bind("lazy_sum",
                         [](CallContext& ctx, LongPointer root) -> std::int64_t {
                           lazy::LazyClient client(ctx.runtime);
                           std::int64_t sum = 0;
                           LongPointer cursor = root;
                           while (!cursor.is_null()) {
                             auto value = client.deref(cursor);
                             value.status().check();
                             sum += value.value().view<ListNode>()->value;
                             cursor = value.value().pointers[0];
                           }
                           EXPECT_EQ(client.callbacks(), 30u);
                           return sum;
                         })
                  .is_ok());
  caller_->run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 30, [](std::uint32_t i) {
      return static_cast<std::int64_t>(i + 1);
    });
    ASSERT_TRUE(head.is_ok());
    Session session(rt);
    auto type = rt.host_types().find<ListNode>();
    ASSERT_TRUE(type.is_ok());
    auto root = lazy::export_pointer(rt, head.value(), type.value());
    ASSERT_TRUE(root.is_ok());
    auto sum = session.call<std::int64_t>(callee_->id(), "lazy_sum", root.value());
    ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
    EXPECT_EQ(sum.value(), 465);
    ASSERT_TRUE(session.end().is_ok());
  });
}

// The fully-eager baseline: whole closure inline, local copy at the callee.
TEST_F(SmartRpcTest, EagerBaselineShipsWholeTree) {
  TypeId tree_type = kInvalidTypeId;
  caller_->run([&](Runtime& rt) {
    tree_type = rt.host_types().find<TreeNode>().value();
    return 0;
  });
  ASSERT_TRUE(eager::bind(*callee_, "eager_visit", tree_type,
                          [](CallContext&, void* root, std::int64_t limit,
                             std::int64_t) -> Result<std::int64_t> {
                            return workload::visit_prefix(
                                static_cast<TreeNode*>(root),
                                static_cast<std::uint64_t>(limit));
                          })
                  .is_ok());
  caller_->run([&](Runtime& rt) {
    auto root = workload::build_complete_tree(rt, 127);
    ASSERT_TRUE(root.is_ok());
    const std::int64_t expected = workload::visit_prefix(root.value(), 127);
    Session session(rt);
    auto sum = eager::call(rt, callee_->id(), "eager_visit", tree_type, root.value(),
                           127, 0);
    ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
    EXPECT_EQ(sum.value(), expected);
    ASSERT_TRUE(session.end().is_ok());
  });
  // The callee freed its transient copy.
  callee_->run([&](Runtime& rt) {
    EXPECT_EQ(rt.heap().live_allocations(), 0u);
    return 0;
  });
}

TEST_F(SmartRpcTest, EagerBaselineRejectsCycles) {
  TypeId graph_type = kInvalidTypeId;
  caller_->run([&](Runtime& rt) {
    graph_type = rt.host_types().find<GraphNode>().value();
    return 0;
  });
  ASSERT_TRUE(eager::bind(*callee_, "eager_graph", graph_type,
                          [](CallContext&, void*, std::int64_t, std::int64_t)
                              -> Result<std::int64_t> { return std::int64_t{0}; })
                  .is_ok());
  caller_->run([&](Runtime& rt) {
    workload::GraphSpec spec;
    spec.node_count = 16;
    spec.allow_cycles = true;
    spec.seed = 3;
    auto root = workload::build_graph(rt, spec);
    ASSERT_TRUE(root.is_ok());
    // Force a guaranteed cycle.
    root.value()->edges[1] = root.value();
    Session session(rt);
    auto sum = eager::call(rt, callee_->id(), "eager_graph", graph_type, root.value(),
                           0, 0);
    ASSERT_FALSE(sum.is_ok());
    EXPECT_EQ(sum.status().code(), StatusCode::kInvalidArgument);
    ASSERT_TRUE(session.end().is_ok());
  });
}

// Closure size 0 behaves like the lazy method (one fetch per page worth of
// data); a large budget behaves eagerly (few fetches).
TEST_F(SmartRpcTest, ClosureBudgetControlsEagerness) {
  ASSERT_TRUE(callee_
                  ->bind("count_fetches",
                         [](CallContext& ctx, TreeNode* root) -> std::int64_t {
                           workload::visit_prefix(root, 1 << 20);
                           return static_cast<std::int64_t>(
                               ctx.runtime.cache().stats().fetches);
                         })
                  .is_ok());
  auto run_with_budget = [&](std::uint64_t budget) {
    return caller_->run([&](Runtime& rt) -> std::int64_t {
      auto root = workload::build_complete_tree(rt, 511);
      root.status().check();
      // The budget steers both sides: the caller's eager argument closure
      // and the callee's fetch-time closure requests.
      rt.cache().set_closure_bytes(budget).check();
      callee_->run([&](Runtime& callee_rt) {
        callee_rt.cache().set_closure_bytes(budget).check();
        callee_rt.cache().reset_stats();
        return 0;
      });
      Session session(rt);
      auto fetches = session.call<std::int64_t>(callee_->id(), "count_fetches",
                                                root.value());
      fetches.status().check();
      session.end().check();
      workload::free_tree(rt, root.value()).check();
      return fetches.value();
    });
  };
  const std::int64_t lazy_fetches = run_with_budget(0);
  const std::int64_t eager_fetches = run_with_budget(1 << 20);
  // Budget 0 degenerates toward the fully-lazy method (many round trips);
  // an unbounded budget ships the whole tree with the call's argument
  // closure, so the callee's traversal never faults at all.
  EXPECT_GT(lazy_fetches, 4);
  EXPECT_EQ(eager_fetches, 0);
}

}  // namespace
}  // namespace srpc
