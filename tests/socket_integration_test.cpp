// Full smart-RPC stack over REAL sockets: every message is framed, written
// through AF_UNIX socket pairs, switched by the hub thread, and re-parsed —
// proving the protocol is sound at byte level, including the fault path
// (a SIGSEGV handler blocking on a socket-fed mailbox).
#include <gtest/gtest.h>

#include "core/smart_rpc.hpp"
#include "workload/list.hpp"
#include "workload/tree.hpp"

namespace srpc {
namespace {

using workload::ListNode;
using workload::TreeNode;

class SocketIntegrationTest : public ::testing::Test {
 protected:
  SocketIntegrationTest()
      : world_([] {
          WorldOptions options;
          options.transport = TransportKind::kSockets;
          return options;
        }()) {
    caller_ = &world_.create_space("caller");
    callee_ = &world_.create_space("callee");
    workload::register_list_type(world_).status().check();
    workload::register_tree_type(world_).status().check();
    world_.start().check();
  }

  World world_;
  AddressSpace* caller_ = nullptr;
  AddressSpace* callee_ = nullptr;
};

TEST_F(SocketIntegrationTest, ScalarCallOverRealFrames) {
  callee_->bind("mul",
                [](CallContext&, std::int64_t a, std::int64_t b) -> std::int64_t {
                  return a * b;
                })
      .check();
  caller_->run([&](Runtime& rt) {
    Session session(rt);
    auto product = session.call<std::int64_t>(callee_->id(), "mul", std::int64_t{6},
                                              std::int64_t{7});
    ASSERT_TRUE(product.is_ok()) << product.status().to_string();
    EXPECT_EQ(product.value(), 42);
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(SocketIntegrationTest, FaultDrivenFetchOverRealFrames) {
  callee_->bind("sum",
                [](CallContext&, ListNode* head) -> std::int64_t {
                  return workload::sum_list(head);
                })
      .check();
  caller_->run([&](Runtime& rt) {
    rt.cache().set_closure_bytes(0).check();  // force fetches through the sockets
    auto head = workload::build_list(rt, 50, [](std::uint32_t i) {
      return static_cast<std::int64_t>(i);
    });
    head.status().check();
    Session session(rt);
    auto sum = session.call<std::int64_t>(callee_->id(), "sum", head.value());
    ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
    EXPECT_EQ(sum.value(), 49 * 50 / 2);
    ASSERT_TRUE(session.end().is_ok());
  });
  // The callee really did fetch over the wire.
  callee_->run([](Runtime& rt) { EXPECT_GT(rt.cache().stats().fetches, 0u); });
}

TEST_F(SocketIntegrationTest, WritesAndWriteBackOverRealFrames) {
  callee_->bind("scale",
                [](CallContext&, ListNode* head) -> std::int64_t {
                  workload::scale_list(head, 3);
                  return workload::sum_list(head);
                })
      .check();
  caller_->run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 10, [](std::uint32_t) {
      return std::int64_t{2};
    });
    head.status().check();
    Session session(rt);
    auto sum = session.call<std::int64_t>(callee_->id(), "scale", head.value());
    ASSERT_TRUE(sum.is_ok());
    EXPECT_EQ(sum.value(), 60);
    EXPECT_EQ(workload::sum_list(head.value()), 60);
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(SocketIntegrationTest, TreeWorkloadEndToEnd) {
  callee_->bind("visit",
                [](CallContext&, TreeNode* root, std::uint64_t limit) -> std::int64_t {
                  return workload::visit_prefix(root, limit);
                })
      .check();
  caller_->run([&](Runtime& rt) {
    auto root = workload::build_complete_tree(rt, 255);
    root.status().check();
    const std::int64_t expected = workload::visit_prefix(root.value(), 200);
    Session session(rt);
    auto sum =
        session.call<std::int64_t>(callee_->id(), "visit", root.value(),
                                   std::uint64_t{200});
    ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
    EXPECT_EQ(sum.value(), expected);
    ASSERT_TRUE(session.end().is_ok());
  });
}

}  // namespace
}  // namespace srpc
