// Zero-copy shm payload lane (PROTOCOL.md "Zero-copy payload lane"):
// arena refcounting, capability negotiation (mixed-arch retraction, per-
// runtime kill switch), exhaustion fallback to the XDR byte lane, fault-
// injected pin release (drops, partitions, crashes, corruption), and the
// move-only send path.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/byte_buffer.hpp"
#include "core/smart_rpc.hpp"
#include "net/fault_transport.hpp"
#include "net/shm_arena.hpp"
#include "types/arch.hpp"
#include "workload/list.hpp"

namespace srpc {
namespace {

using workload::ListNode;

// --- arena unit tests ------------------------------------------------------

std::vector<std::uint8_t> some_bytes(std::size_t n, std::uint8_t fill) {
  return std::vector<std::uint8_t>(n, fill);
}

TEST(ShmArenaTest, PublishPinsAndLastViewReleases) {
  ShmArena arena(1 << 20);
  auto view = arena.publish(some_bytes(100, 0xAB));
  ASSERT_TRUE(view.is_ok());
  EXPECT_EQ(view.value().len, 100u);
  EXPECT_EQ(view.value().bytes()[0], 0xAB);
  EXPECT_EQ(arena.stats().regions_live, 1u);
  EXPECT_EQ(arena.stats().bytes_live, 100u);

  {
    PayloadView copy = view.value();  // second pin
    view.value().reset();
    EXPECT_EQ(arena.stats().regions_live, 1u) << "copy still pins the region";
    EXPECT_EQ(copy.bytes()[99], 0xAB);
  }
  EXPECT_EQ(arena.stats().regions_live, 0u);
  EXPECT_EQ(arena.stats().bytes_live, 0u);
  EXPECT_EQ(arena.stats().regions_released, 1u);
}

TEST(ShmArenaTest, CapacityExhaustionLeavesBytesForFallback) {
  ShmArena arena(64);
  auto big = some_bytes(65, 0x11);
  auto failed = arena.publish(std::move(big));
  ASSERT_FALSE(failed.is_ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted);
  // The vector was not adopted: the caller can still frame it.
  EXPECT_EQ(big.size(), 65u);
  EXPECT_EQ(arena.stats().publish_failures, 1u);
  EXPECT_EQ(arena.stats().regions_live, 0u);

  auto fits = arena.publish(some_bytes(64, 0x22));
  ASSERT_TRUE(fits.is_ok());
}

TEST(ShmArenaTest, StashClaimIsOneShot) {
  ShmArena arena(1 << 20);
  auto view = arena.publish(some_bytes(32, 0x5A));
  ASSERT_TRUE(view.is_ok());
  const std::uint32_t arena_id = view.value().arena_id;

  auto ticket = ShmArena::stash(view.value());
  ASSERT_TRUE(ticket.is_ok());
  view.value().reset();
  EXPECT_EQ(arena.stats().regions_live, 1u) << "stash parks its own pin";

  auto claimed = ShmArena::claim(arena_id, ticket.value());
  ASSERT_TRUE(claimed.is_ok());
  EXPECT_EQ(claimed.value().bytes()[0], 0x5A);
  auto again = ShmArena::claim(arena_id, ticket.value());
  EXPECT_FALSE(again.is_ok()) << "a ticket redeems exactly once";

  claimed.value().reset();
  EXPECT_EQ(arena.stats().regions_live, 0u);
}

// --- world-level fixtures --------------------------------------------------

WorldOptions lane_options(bool shm, bool faults = false) {
  WorldOptions options;
  options.cost = CostModel::zero();
  options.cache.closure_bytes = 0;  // force FETCH traffic through the lane
  options.shm_payload = shm;
  options.fault_injection = faults;
  if (faults) options.timeouts = TimeoutConfig::aggressive();
  return options;
}

// Caller/callee pair running one mutating list workload per call: the
// callee scales the caller-homed list (fetch + dirty + write-back at
// session end), so every payload class crosses the wire.
struct LanePair {
  explicit LanePair(WorldOptions options, bool add_foreign_arch = false)
      : world(options) {
    caller = &world.create_space("caller");
    callee = &world.create_space("callee");
    if (add_foreign_arch) {
      // A single foreign-arch space retracts kCapShmPayload world-wide.
      world.create_space("legacy", sparc32_arch());
    }
    workload::register_list_type(world).status().check();
    callee
        ->bind("scale_sum",
               [](CallContext&, ListNode* head) -> std::int64_t {
                 workload::scale_list(head, 2);
                 return workload::sum_list(head);
               })
        .check();
    callee
        ->bind("sum",
               [](CallContext&, ListNode* head) -> std::int64_t {
                 return workload::sum_list(head);
               })
        .check();
  }

  std::int64_t run_once(std::uint32_t nodes = 16) {
    return caller->run([&](Runtime& rt) -> std::int64_t {
      auto head = workload::build_list(rt, nodes, [](std::uint32_t i) {
        return static_cast<std::int64_t>(i + 1);
      });
      head.status().check();
      Session session(rt);
      auto sum =
          session.call<std::int64_t>(callee->id(), "scale_sum", head.value());
      sum.status().check();
      session.end().check();
      return sum.value();
    });
  }

  // Read-only variant: the callee fetches and sums but never dirties the
  // list, so no write-back deltas cross the wire. Delta coalescing over the
  // dirty set is not byte-deterministic across worlds in one process, so
  // wire-byte-identity assertions must ride this workload.
  std::int64_t run_sum(std::uint32_t nodes = 16) {
    return caller->run([&](Runtime& rt) -> std::int64_t {
      auto head = workload::build_list(rt, nodes, [](std::uint32_t i) {
        return static_cast<std::int64_t>(i + 1);
      });
      head.status().check();
      Session session(rt);
      auto sum = session.call<std::int64_t>(callee->id(), "sum", head.value());
      sum.status().check();
      session.end().check();
      return sum.value();
    });
  }

  std::uint64_t published() {
    std::uint64_t n = 0;
    for (AddressSpace* s : {caller, callee}) {
      n += s->run([](Runtime& rt) { return rt.stats().shm_payloads_published; });
    }
    return n;
  }

  std::uint64_t fallbacks() {
    std::uint64_t n = 0;
    for (AddressSpace* s : {caller, callee}) {
      n += s->run([](Runtime& rt) { return rt.stats().shm_publish_fallbacks; });
    }
    return n;
  }

  World world;
  AddressSpace* caller = nullptr;
  AddressSpace* callee = nullptr;
};

std::int64_t expected_sum(std::uint32_t nodes) {
  std::int64_t sum = 0;
  for (std::uint32_t i = 1; i <= nodes; ++i) sum += 2 * static_cast<std::int64_t>(i);
  return sum;
}

// Under aggressive timeouts a retransmit-duplicated reply can still sit in a
// worker's mailbox (pin held) at the instant the caller's run() returns; the
// pin releases as soon as that worker drains it. Poll briefly so quiescence
// assertions measure the steady state, not the race window.
ShmArenaStats settled_stats(World& world) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  ShmArenaStats stats = world.shm_arena()->stats();
  while (stats.regions_live != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stats = world.shm_arena()->stats();
  }
  return stats;
}

// --- lane behaviour --------------------------------------------------------

TEST(ShmLaneTest, RoundtripElevatesPayloadsAndReleasesEveryRegion) {
  LanePair lane(lane_options(/*shm=*/true));
  EXPECT_EQ(lane.run_once(), expected_sum(16));
  EXPECT_GT(lane.published(), 0u) << "no payload rode the arena";
  EXPECT_EQ(lane.fallbacks(), 0u);
  const ShmArenaStats stats = settled_stats(lane.world);
  EXPECT_GT(stats.regions_published, 0u);
  EXPECT_EQ(stats.regions_live, 0u) << "pins leaked after quiesce";
  EXPECT_EQ(stats.bytes_live, 0u);
}

// Capability-mismatch matrix: every combination of per-runtime kill switch
// states computes the same result on both workloads, and a fully disabled
// pair never touches the arena — every frame is legacy-encoded. (Frame-level
// byte identity of the byte lane is pinned exactly in net_test's WireFrames
// suite; absolute wire totals are not comparable across worlds in one
// process because fetch traffic spans pages address-dependently.)
TEST(ShmLaneTest, KillSwitchMatrixStaysCorrectAndOffTheArena) {
  LanePair legacy(lane_options(/*shm=*/false));
  const std::int64_t want = legacy.run_sum();
  EXPECT_EQ(want, 16 * 17 / 2);

  for (const bool caller_on : {false, true}) {
    for (const bool callee_on : {false, true}) {
      LanePair lane(lane_options(/*shm=*/true));
      lane.caller->run([&](Runtime& rt) {
        rt.set_shm_payload(caller_on);
        return 0;
      });
      lane.callee->run([&](Runtime& rt) {
        rt.set_shm_payload(callee_on);
        return 0;
      });
      EXPECT_EQ(lane.run_sum(), want)
          << "caller_on=" << caller_on << " callee_on=" << callee_on;
      // The mutating workload must stay correct under every switch combo.
      EXPECT_EQ(lane.run_once(), expected_sum(16))
          << "caller_on=" << caller_on << " callee_on=" << callee_on;
      EXPECT_EQ(settled_stats(lane.world).regions_live, 0u);
      if (!caller_on && !callee_on) {
        EXPECT_EQ(lane.published(), 0u)
            << "a disabled pair elevated a payload";
        EXPECT_EQ(lane.world.shm_arena()->stats().regions_published, 0u);
      } else {
        EXPECT_GT(lane.published(), 0u);
      }
    }
  }
}

// A shm-capable space talking in a world with a legacy (foreign-arch) peer:
// the capability is retracted world-wide, so no payload is ever elevated —
// every frame a legacy decoder might see is byte-lane encoded.
TEST(ShmLaneTest, MixedArchWorldRetractsCapability) {
  LanePair legacy(lane_options(/*shm=*/false), /*add_foreign_arch=*/true);
  const std::int64_t want = legacy.run_sum();

  LanePair lane(lane_options(/*shm=*/true), /*add_foreign_arch=*/true);
  EXPECT_EQ(lane.run_sum(), want);
  EXPECT_EQ(lane.run_once(), expected_sum(16));
  EXPECT_EQ(lane.published(), 0u) << "foreign arch must retract the capability";
  EXPECT_EQ(lane.world.shm_arena()->stats().regions_published, 0u);
}

TEST(ShmLaneTest, ArenaExhaustionFallsBackToByteLaneWithoutError) {
  WorldOptions options = lane_options(/*shm=*/true);
  options.shm_arena_bytes = 64;  // smaller than any fetch-reply payload here
  LanePair lane(options);
  EXPECT_EQ(lane.run_once(), expected_sum(16));
  EXPECT_GT(lane.fallbacks(), 0u) << "nothing hit the capacity limit";
  const ShmArenaStats stats = lane.world.shm_arena()->stats();
  EXPECT_GT(stats.publish_failures, 0u);
  EXPECT_EQ(stats.regions_live, 0u);
}

// --- fault injection -------------------------------------------------------

TEST(ShmLaneTest, DroppedRepliesRetransmitAndReleasePins) {
  LanePair lane(lane_options(/*shm=*/true, /*faults=*/true));
  // Lose one fetch reply: the fetch retransmits (idempotent) and the
  // dropped message's view must release its region on destruction.
  lane.world.fault()->drop_next(MessageType::kFetchReply, 1);
  EXPECT_EQ(lane.run_once(), expected_sum(16));
  lane.world.fault()->disarm();
  const ShmArenaStats stats = settled_stats(lane.world);
  EXPECT_EQ(stats.regions_live, 0u) << "dropped in-flight view leaked its pin";
}

TEST(ShmLaneTest, PartitionAbortsCallAndReleasesPins) {
  LanePair lane(lane_options(/*shm=*/true, /*faults=*/true));
  EXPECT_EQ(lane.run_once(), expected_sum(16));  // warm contact state

  lane.world.fault()->partition(lane.callee->id());
  lane.caller->run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 4, [](std::uint32_t i) {
      return static_cast<std::int64_t>(i);
    });
    head.status().check();
    Session session(rt);
    auto sum =
        session.call<std::int64_t>(lane.callee->id(), "scale_sum", head.value());
    EXPECT_FALSE(sum.is_ok()) << "call across a partition must fail";
    (void)session.end();  // best effort: invalidates are cut too
    return 0;
  });
  lane.world.fault()->heal_all();

  // No recovery call here: enough timeouts during the partition may drive
  // the failure detector to a (terminal, by design) dead verdict for the
  // callee. The lane-level guarantee under test is only that elevated views
  // cut off by the partition release their pins.
  const ShmArenaStats stats = settled_stats(lane.world);
  EXPECT_EQ(stats.regions_live, 0u)
      << "views elevated into the partition leaked their pins";
}

TEST(ShmLaneTest, CrashWithInFlightViewsDoesNotLeakRegions) {
  LanePair lane(lane_options(/*shm=*/true, /*faults=*/true));
  EXPECT_EQ(lane.run_once(), expected_sum(16));

  lane.caller->run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 4, [](std::uint32_t i) {
      return static_cast<std::int64_t>(i);
    });
    head.status().check();
    rt.begin_session().status().check();
    // The call succeeds and leaves dirty cached data + a staged write-back
    // target on the callee; the crash lands before session end.
    auto sum = typed_call<std::int64_t>(rt, lane.callee->id(), "scale_sum",
                                        head.value());
    sum.status().check();
    return 0;
  });
  lane.world.crash_space(lane.callee->id());
  // Session cleanup runs on the caller's worker; a subsequent run() call
  // barriers behind it.
  lane.caller->run([](Runtime& rt) {
    (void)rt.end_session();
    return 0;
  });
  const ShmArenaStats stats = settled_stats(lane.world);
  EXPECT_EQ(stats.regions_live, 0u)
      << "crash left staged/in-flight views pinned";
}

TEST(ShmLaneTest, CorruptionDowngradesViewWithoutScribblingArena) {
  LanePair lane(lane_options(/*shm=*/true, /*faults=*/true));
  lane.world.fault()->corrupt_next(MessageType::kCall, 1);
  lane.caller->run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 4, [](std::uint32_t i) {
      return static_cast<std::int64_t>(i + 1);
    });
    head.status().check();
    Session session(rt);
    auto sum =
        session.call<std::int64_t>(lane.callee->id(), "scale_sum", head.value());
    EXPECT_FALSE(sum.is_ok()) << "corrupted call must not decode";
    (void)session.end();
    return 0;
  });
  const FaultStats faults = lane.world.fault()->stats();
  EXPECT_EQ(faults.corrupted, 1u);
  EXPECT_EQ(faults.shm_downgrades, 1u)
      << "the view must be privatised before the bytes are damaged";
  lane.world.fault()->disarm();

  // The arena region itself was never scribbled and the lane still works.
  EXPECT_EQ(lane.run_once(), expected_sum(16));
  EXPECT_EQ(settled_stats(lane.world).regions_live, 0u);
}

// --- move-only send path ---------------------------------------------------

// A non-idempotent scalar call makes zero deep copies of owned payload
// bytes end to end: issue, SimNetwork, mailbox, dispatch, and the reply all
// move the one buffer (idempotent requests deliberately keep one
// retransmittable copy, and fault duplication copies by design — neither is
// on this path).
TEST(ShmLaneTest, ScalarCallSendPathMakesNoOwnedPayloadCopies) {
  WorldOptions options;
  options.cost = CostModel::zero();
  World world(options);
  AddressSpace& caller = world.create_space("caller");
  AddressSpace& callee = world.create_space("callee");
  callee
      .bind("echo",
            [](CallContext&, std::int64_t v) -> std::int64_t { return v; })
      .check();

  caller.run([&](Runtime& rt) {
    Session session(rt);
    const std::uint64_t before = ByteBuffer::owned_copy_count();
    auto v = session.call<std::int64_t>(callee.id(), "echo", std::int64_t{41});
    v.status().check();
    EXPECT_EQ(v.value(), 41);
    EXPECT_EQ(ByteBuffer::owned_copy_count() - before, 0u)
        << "the send path deep-copied an owned payload";
    session.end().check();
    return 0;
  });
}

// Same assertion on the shm lane with fetch traffic: fetches are idempotent
// (so the endpoint keeps a retransmittable original), but by the time the
// pending slot copies the message its payload has been elevated into the
// arena — the copy is a descriptor + refcount bump, not bytes.
TEST(ShmLaneTest, ShmLaneFetchPathMakesNoOwnedPayloadCopies) {
  LanePair lane(lane_options(/*shm=*/true));
  const std::uint64_t before = ByteBuffer::owned_copy_count();
  EXPECT_EQ(lane.run_once(), expected_sum(16));
  EXPECT_EQ(ByteBuffer::owned_copy_count() - before, 0u)
      << "the shm lane deep-copied a payload somewhere";
}

// --- real frames -----------------------------------------------------------

// Over AF_UNIX sockets the frame carries the 20-byte descriptor; the hub
// re-stashes on switch and the receiver claims the pin back out of the
// process-wide registry.
TEST(ShmLaneTest, SocketFramesCarryDescriptorsAndReleasePins) {
  WorldOptions options;
  options.transport = TransportKind::kSockets;
  options.shm_payload = true;
  options.cache.closure_bytes = 0;
  World world(options);
  AddressSpace& caller = world.create_space("caller");
  AddressSpace& callee = world.create_space("callee");
  workload::register_list_type(world).status().check();
  callee
      .bind("scale_sum",
            [](CallContext&, ListNode* head) -> std::int64_t {
              workload::scale_list(head, 2);
              return workload::sum_list(head);
            })
      .check();
  world.start().check();

  const std::int64_t sum = caller.run([&](Runtime& rt) -> std::int64_t {
    auto head = workload::build_list(rt, 16, [](std::uint32_t i) {
      return static_cast<std::int64_t>(i + 1);
    });
    head.status().check();
    Session session(rt);
    auto v = session.call<std::int64_t>(callee.id(), "scale_sum", head.value());
    v.status().check();
    session.end().check();
    return v.value();
  });
  EXPECT_EQ(sum, expected_sum(16));

  std::uint64_t published = 0;
  for (AddressSpace* s : {&caller, &callee}) {
    published +=
        s->run([](Runtime& rt) { return rt.stats().shm_payloads_published; });
  }
  EXPECT_GT(published, 0u) << "no payload rode the arena over the sockets";
  const ShmArenaStats stats = settled_stats(world);
  EXPECT_EQ(stats.regions_live, 0u) << "stashed frame pins leaked";
  EXPECT_EQ(stats.stashed_inflight, 0u);
}

}  // namespace
}  // namespace srpc
