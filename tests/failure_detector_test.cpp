// FailureDetector state machine in isolation: miss-streak thresholds, the
// alive -> suspect -> dead escalation, dead being terminal to ordinary
// observations, and the note_rejoin() reopening path added for space
// reincarnation (kDead -> kRejoining -> kAlive).
#include <gtest/gtest.h>

#include "core/failure_detector.hpp"

namespace srpc {
namespace {

constexpr SpaceId kPeer = 7;

TEST(FailureDetectorTest, StartsAliveAndContactKeepsAlive) {
  FailureDetector det;
  EXPECT_EQ(det.health(kPeer), PeerHealth::kAlive);
  det.note_contact(kPeer, 1000);
  EXPECT_EQ(det.health(kPeer), PeerHealth::kAlive);
  EXPECT_EQ(det.last_contact_ns(kPeer), 1000u);
  EXPECT_TRUE(det.dead_peers().empty());
}

TEST(FailureDetectorTest, MissStreakEscalatesThroughSuspectToDead) {
  // Defaults: suspect_after = 1, dead_after = 3.
  FailureDetector det;
  EXPECT_EQ(det.note_miss(kPeer), PeerHealth::kSuspect);
  EXPECT_EQ(det.note_miss(kPeer), PeerHealth::kSuspect);
  EXPECT_EQ(det.note_miss(kPeer), PeerHealth::kDead);
  EXPECT_TRUE(det.is_dead(kPeer));
  ASSERT_EQ(det.dead_peers().size(), 1u);
  EXPECT_EQ(det.dead_peers().front(), kPeer);
}

TEST(FailureDetectorTest, ContactResetsTheMissStreak) {
  FailureDetector det;
  EXPECT_EQ(det.note_miss(kPeer), PeerHealth::kSuspect);
  EXPECT_EQ(det.note_miss(kPeer), PeerHealth::kSuspect);
  det.note_contact(kPeer, 50);  // streak back to zero, suspicion lifted
  EXPECT_EQ(det.health(kPeer), PeerHealth::kAlive);
  // A fresh streak gets the full dead_after budget again.
  EXPECT_EQ(det.note_miss(kPeer), PeerHealth::kSuspect);
  EXPECT_EQ(det.note_miss(kPeer), PeerHealth::kSuspect);
  EXPECT_EQ(det.note_miss(kPeer), PeerHealth::kDead);
}

TEST(FailureDetectorTest, ExplicitMarksShortCircuitTheThresholds) {
  FailureDetector det;
  det.mark_suspect(kPeer);
  EXPECT_EQ(det.health(kPeer), PeerHealth::kSuspect);
  // mark_dead reports the transition exactly once.
  EXPECT_TRUE(det.mark_dead(kPeer));
  EXPECT_FALSE(det.mark_dead(kPeer));
  EXPECT_TRUE(det.is_dead(kPeer));
}

TEST(FailureDetectorTest, DeadIsTerminalToOrdinaryObservations) {
  FailureDetector det;
  ASSERT_TRUE(det.mark_dead(kPeer));
  // A stray late frame from the crashed incarnation must not resurrect the
  // peer: the death verdict already triggered irreversible cleanup.
  det.note_contact(kPeer, 999);
  EXPECT_EQ(det.health(kPeer), PeerHealth::kDead);
  det.mark_suspect(kPeer);
  EXPECT_EQ(det.health(kPeer), PeerHealth::kDead);
  EXPECT_EQ(det.note_miss(kPeer), PeerHealth::kDead);
}

TEST(FailureDetectorTest, RejoinReopensADeadPeer) {
  FailureDetector det;
  ASSERT_TRUE(det.mark_dead(kPeer));
  det.note_rejoin(kPeer);
  EXPECT_EQ(det.health(kPeer), PeerHealth::kRejoining);
  EXPECT_FALSE(det.is_dead(kPeer));
  EXPECT_TRUE(det.dead_peers().empty());
  // The first successful exchange completes the reopening.
  det.note_contact(kPeer, 2000);
  EXPECT_EQ(det.health(kPeer), PeerHealth::kAlive);
}

TEST(FailureDetectorTest, RejoinIsOnlyAnExitFromDead) {
  FailureDetector det;
  det.note_rejoin(kPeer);  // alive peer: no-op
  EXPECT_EQ(det.health(kPeer), PeerHealth::kAlive);
  det.mark_suspect(kPeer);
  det.note_rejoin(kPeer);  // suspect peer: still a no-op
  EXPECT_EQ(det.health(kPeer), PeerHealth::kSuspect);
}

TEST(FailureDetectorTest, RejoiningPeerCanDieAgain) {
  FailureDetector det;
  ASSERT_TRUE(det.mark_dead(kPeer));
  det.note_rejoin(kPeer);
  ASSERT_EQ(det.health(kPeer), PeerHealth::kRejoining);
  // The resurrected peer gets a full dead_after budget of misses...
  EXPECT_NE(det.note_miss(kPeer), PeerHealth::kDead);
  EXPECT_NE(det.note_miss(kPeer), PeerHealth::kDead);
  EXPECT_EQ(det.note_miss(kPeer), PeerHealth::kDead);
  // ...and the second death is reported as a fresh transition by mark_dead
  // on another detector path too.
  det.note_rejoin(kPeer);
  EXPECT_TRUE(det.mark_dead(kPeer));
}

}  // namespace
}  // namespace srpc
