// Unit tests for the paper's §2 baselines: rpcgen-style eager inline
// marshalling and the callback-per-dereference lazy client.
#include <gtest/gtest.h>

#include "baselines/eager_rpc.hpp"
#include "baselines/lazy_rpc.hpp"
#include "core/smart_rpc.hpp"
#include "workload/list.hpp"
#include "workload/tree.hpp"

namespace srpc {
namespace {

using workload::ListNode;
using workload::TreeNode;

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest() : world_([] {
          WorldOptions options;
          options.cost = CostModel::zero();
          return options;
        }()) {
    a_ = &world_.create_space("A");
    b_ = &world_.create_space("B");
    workload::register_list_type(world_).status().check();
    workload::register_tree_type(world_).status().check();
  }

  World world_;
  AddressSpace* a_ = nullptr;
  AddressSpace* b_ = nullptr;
};

// The paper's headline number: a 32767-node tree is "524,272 bytes" under
// the eager method — 16 wire bytes per node (two 4-byte presence flags +
// the 8-byte datum). Check the encoding hits exactly that density.
TEST_F(BaselinesTest, InlineEncodingMatchesPaperByteCount) {
  a_->run([&](Runtime& rt) {
    auto root = workload::build_complete_tree(rt, 1023);
    root.status().check();
    const TypeId tree_type = rt.host_types().find<TreeNode>().value();
    ByteBuffer wire;
    xdr::Encoder enc(wire);
    ASSERT_TRUE(eager::encode_inline(rt, tree_type, root.value(), enc).is_ok());
    // Every node costs two 4-byte presence flags + the 8-byte datum: the
    // paper's 32767-node tree at this density is exactly 524,272 bytes.
    EXPECT_EQ(wire.size(), 1023u * 16u);
  });
}

TEST_F(BaselinesTest, InlineRoundTripPreservesStructure) {
  a_->run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 40, [](std::uint32_t i) {
      return static_cast<std::int64_t>(i) * 3 - 7;
    });
    head.status().check();
    const TypeId list_type = rt.host_types().find<ListNode>().value();
    ByteBuffer wire;
    xdr::Encoder enc(wire);
    ASSERT_TRUE(eager::encode_inline(rt, list_type, head.value(), enc).is_ok());

    const std::size_t before = rt.heap().live_allocations();
    xdr::Decoder dec(wire);
    auto copy = eager::decode_inline(rt, list_type, dec);
    ASSERT_TRUE(copy.is_ok()) << copy.status().to_string();
    // decode_inline allocates a full private copy...
    EXPECT_EQ(rt.heap().live_allocations(), before + 39);  // 39 children
    // ...whose values match but whose identity is distinct.
    auto* copied = static_cast<ListNode*>(copy.value());
    EXPECT_NE(copied, head.value()->next);
    ListNode* orig = head.value()->next;
    for (ListNode* n = copied; n != nullptr; n = n->next, orig = orig->next) {
      ASSERT_NE(orig, nullptr);
      EXPECT_EQ(n->value, orig->value);
    }
  });
}

TEST_F(BaselinesTest, InlineEncodingDuplicatesSharedNodes) {
  a_->run([&](Runtime& rt) {
    // A diamond: root's left and right both point at the same child. The
    // inline encoding has no identity section, so the shared child is
    // serialised twice (rpcgen semantics: sharing is lost, DAG -> tree).
    const TypeId tree_type = rt.host_types().find<TreeNode>().value();
    auto root_mem = rt.heap().allocate(tree_type);
    auto child_mem = rt.heap().allocate(tree_type);
    root_mem.status().check();
    child_mem.status().check();
    auto* root = static_cast<TreeNode*>(root_mem.value());
    auto* child = static_cast<TreeNode*>(child_mem.value());
    root->left = child;
    root->right = child;

    ByteBuffer wire;
    xdr::Encoder enc(wire);
    ASSERT_TRUE(eager::encode_inline(rt, tree_type, root, enc).is_ok());
    EXPECT_EQ(wire.size(), 3u * 16u);  // 2 objects, 3 encodings
  });
}

TEST_F(BaselinesTest, LazyClientReportsPointersInFieldOrder) {
  ASSERT_TRUE(b_->bind("probe",
                       [](CallContext& ctx, LongPointer root) -> std::int64_t {
                         lazy::LazyClient client(ctx.runtime);
                         auto v = client.deref(root);
                         v.status().check();
                         // TreeNode fields: left, right, data.
                         EXPECT_EQ(v.value().pointers.size(), 2u);
                         EXPECT_FALSE(v.value().pointers[0].is_null());
                         EXPECT_TRUE(v.value().pointers[1].is_null());
                         return v.value().view<TreeNode>()->data;
                       })
                  .is_ok());
  a_->run([&](Runtime& rt) {
    auto root = workload::build_complete_tree(rt, 2);  // root with left only
    root.status().check();
    const TypeId tree_type = rt.host_types().find<TreeNode>().value();
    Session session(rt);
    auto lp = lazy::export_pointer(rt, root.value(), tree_type);
    ASSERT_TRUE(lp.is_ok());
    auto data = session.call<std::int64_t>(b_->id(), "probe", lp.value());
    ASSERT_TRUE(data.is_ok()) << data.status().to_string();
    EXPECT_EQ(data.value(), 0);
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(BaselinesTest, LazyDerefSeesCurrentHomeValues) {
  // No caching: two derefs straddling a home-side update observe both
  // values (the lazy method's semantics).
  ASSERT_TRUE(b_->bind("double_deref",
                       [](CallContext& ctx, LongPointer p) -> std::int64_t {
                         lazy::LazyClient client(ctx.runtime);
                         auto first = client.deref(p);
                         first.status().check();
                         auto second = client.deref(p);
                         second.status().check();
                         EXPECT_EQ(client.callbacks(), 2u);
                         return first.value().view<ListNode>()->value +
                                second.value().view<ListNode>()->value;
                       })
                  .is_ok());
  a_->run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 1, [](std::uint32_t) { return std::int64_t{5}; });
    head.status().check();
    const TypeId list_type = rt.host_types().find<ListNode>().value();
    Session session(rt);
    auto lp = lazy::export_pointer(rt, head.value(), list_type);
    ASSERT_TRUE(lp.is_ok());
    auto sum = session.call<std::int64_t>(b_->id(), "double_deref", lp.value());
    ASSERT_TRUE(sum.is_ok());
    EXPECT_EQ(sum.value(), 10);
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(BaselinesTest, LazyDerefErrorsOnNullAndUntyped) {
  a_->run([&](Runtime& rt) {
    lazy::LazyClient client(rt);
    EXPECT_FALSE(client.deref(LongPointer::null()).is_ok());
    EXPECT_FALSE(client.deref(LongPointer{1, 0x1000, kInvalidTypeId}).is_ok());
    EXPECT_EQ(client.callbacks(), 0u);  // neither consumed a round trip
  });
}

TEST_F(BaselinesTest, LazyDerefOfFreedDatumFails) {
  ASSERT_TRUE(b_->bind("deref_it",
                       [](CallContext& ctx, LongPointer p) -> std::int64_t {
                         lazy::LazyClient client(ctx.runtime);
                         auto v = client.deref(p);
                         EXPECT_FALSE(v.is_ok());
                         EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
                         return -1;
                       })
                  .is_ok());
  a_->run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 1, [](std::uint32_t) { return std::int64_t{1}; });
    head.status().check();
    const TypeId list_type = rt.host_types().find<ListNode>().value();
    auto lp = lazy::export_pointer(rt, head.value(), list_type);
    ASSERT_TRUE(lp.is_ok());
    rt.heap().free(head.value()).check();  // dangle it
    Session session(rt);
    auto r = session.call<std::int64_t>(b_->id(), "deref_it", lp.value());
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r.value(), -1);
    ASSERT_TRUE(session.end().is_ok());
  });
}

}  // namespace
}  // namespace srpc
