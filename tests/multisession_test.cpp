// Concurrent multi-session runtime: many sessions per space, home-side
// coherency arbitration (ObjectLockTable + ConflictArbiter, wound-wait by
// session id), per-session cache overlays, WB_CONFLICT losers that retry
// cleanly. Covers:
//  * disjoint sessions commit independently (no conflicts, both visible)
//  * write-write conflict: exactly one loser, whose retry succeeds, in
//    both wound-wait directions (older wounds younger; younger meets an
//    older holder and loses immediately)
//  * a three-session read/write cycle resolves without deadlock
//  * sibling teardown isolation: aborting one session on a space leaves
//    its siblings' caches and commits untouched
//  * fault-injected soak with truly parallel grounds, ending with zero
//    leaked locks, sessions, or session-owned heap bytes anywhere
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/smart_rpc.hpp"
#include "net/fault_transport.hpp"
#include "workload/list.hpp"

namespace srpc {
namespace {

using workload::ListNode;

constexpr int kLists = 4;

// Sum of list `w` as built: values w*100 + {0,1,2}.
constexpr std::int64_t original_sum(std::int64_t w) { return 3 * w * 100 + 3; }

class MultiSessionTest : public ::testing::Test {
 protected:
  void build_world(bool faults) {
    WorldOptions options;
    options.cost = CostModel::zero();
    options.cache.closure_bytes = 0;  // every remote read is a FETCH
    options.multi_session = true;
    options.fault_injection = faults;
    options.timeouts = TimeoutConfig::aggressive();
    world_ = std::make_unique<World>(options);
    home_ = &world_->create_space("home");
    g1_ = &world_->create_space("g1");
    g2_ = &world_->create_space("g2");
    g3_ = &world_->create_space("g3");
    workload::register_list_type(*world_).status().check();
    home_
        ->bind("list",
               [this](CallContext&, std::int64_t which) -> ListNode* {
                 return heads_[which];
               })
        .check();
    home_
        ->bind("sum",
               [this](CallContext&, std::int64_t which) -> std::int64_t {
                 return workload::sum_list(heads_[which]);
               })
        .check();
    home_->run([this](Runtime& rt) {
      for (std::int64_t w = 0; w < kLists; ++w) {
        auto head = workload::build_list(rt, 3, [w](std::uint32_t i) {
          return w * 100 + static_cast<std::int64_t>(i);
        });
        head.status().check();
        heads_[w] = head.value();
      }
    });
  }

  ~MultiSessionTest() override {
    if (world_ && world_->fault() != nullptr) world_->fault()->disarm();
  }

  // Opens a session on `rt`, caches list `which`, and overwrites the head
  // value — the canonical single-object write.
  static ListNode* dirty_list(Runtime& rt, std::int64_t which,
                              std::int64_t value) {
    EXPECT_TRUE(rt.begin_session().is_ok());
    auto head = typed_call<ListNode*>(rt, 0, "list", which);
    EXPECT_TRUE(head.is_ok()) << head.status().to_string();
    EXPECT_TRUE(rt.prefetch(head.value(), 1 << 16).is_ok());
    head.value()->value = value;
    return head.value();
  }

  std::int64_t home_sum(std::int64_t which) {
    return g3_->run([which](Runtime& rt) {
      Session session(rt);
      auto sum = typed_call<std::int64_t>(rt, 0, "sum", which);
      sum.status().check();
      EXPECT_TRUE(session.end().is_ok());
      return sum.value();
    });
  }

  ArbiterStats home_arbiter_stats() {
    return home_->run([](Runtime& rt) { return rt.arbiter().stats(); });
  }

  // Nothing session-scoped may outlive the tests: no open sessions, no
  // object locks, no session-owned heap bytes, anywhere in the world.
  void expect_no_leaks() {
    for (std::size_t i = 0; i < world_->space_count(); ++i) {
      AddressSpace& space = world_->space(static_cast<SpaceId>(i));
      EXPECT_EQ(space.run([](Runtime& rt) { return rt.active_sessions(); }), 0u)
          << "leaked sessions on " << space.name();
      EXPECT_EQ(space.run([](Runtime& rt) { return rt.arbiter().lock_count(); }),
                0u)
          << "leaked object locks on " << space.name();
      EXPECT_EQ(
          space.run([](Runtime& rt) { return rt.heap().session_owned_bytes(); }),
          0u)
          << "leaked session-owned heap bytes on " << space.name();
    }
  }

  std::unique_ptr<World> world_;
  AddressSpace* home_ = nullptr;
  AddressSpace* g1_ = nullptr;
  AddressSpace* g2_ = nullptr;
  AddressSpace* g3_ = nullptr;
  ListNode* heads_[kLists] = {};
};

TEST_F(MultiSessionTest, DisjointSessionsCommitIndependently) {
  build_world(/*faults=*/false);
  // Both sessions are open at once (interleaved through the home), touch
  // different objects, and must both commit without arbitration noise.
  g1_->run([](Runtime& rt) { dirty_list(rt, 0, 1000); });
  g2_->run([](Runtime& rt) { dirty_list(rt, 1, 2000); });
  g1_->run([](Runtime& rt) {
    ASSERT_TRUE(rt.end_session().is_ok());
    EXPECT_EQ(rt.stats().sessions_committed, 1u);
    EXPECT_EQ(rt.stats().wb_conflicts, 0u);
  });
  g2_->run([](Runtime& rt) {
    ASSERT_TRUE(rt.end_session().is_ok());
    EXPECT_EQ(rt.stats().wb_conflicts, 0u);
  });
  EXPECT_EQ(home_sum(0), 1000 + 1 + 2);
  EXPECT_EQ(home_sum(1), 2000 + 101 + 102);
  const ArbiterStats stats = home_arbiter_stats();
  EXPECT_EQ(stats.conflicts, 0u);
  EXPECT_EQ(stats.wounds, 0u);
  expect_no_leaks();
}

TEST_F(MultiSessionTest, OlderWriterWoundsYoungerAndLoserRetries) {
  build_world(/*faults=*/false);
  // Session ids order by (space << 32 | counter): g1's session is older
  // than g2's. Both read and write list 0; the older commits first and
  // wounds the younger's read locks — the younger discovers the wound at
  // its own prepare, aborts, and succeeds on a fresh session.
  g1_->run([](Runtime& rt) { dirty_list(rt, 0, 1111); });
  g2_->run([](Runtime& rt) { dirty_list(rt, 0, 2222); });
  g1_->run([](Runtime& rt) { ASSERT_TRUE(rt.end_session().is_ok()); });
  EXPECT_EQ(home_sum(0), 1111 + 1 + 2);  // the winner's commit is home data
  g2_->run([](Runtime& rt) {
    Status ended = rt.end_session();
    ASSERT_FALSE(ended.is_ok());
    EXPECT_EQ(ended.code(), StatusCode::kConflict) << ended.to_string();
    EXPECT_EQ(rt.stats().wb_conflicts, 1u);
    ASSERT_TRUE(rt.abort_session().is_ok());
    // Retry under a fresh session: re-fetch (now the winner's value) and
    // write over it — no survivor contends, so this commit must land.
    ASSERT_TRUE(rt.begin_session().is_ok());
    auto head = typed_call<ListNode*>(rt, 0, "list", std::int64_t{0});
    ASSERT_TRUE(head.is_ok()) << head.status().to_string();
    ASSERT_TRUE(rt.prefetch(head.value(), 1 << 16).is_ok());
    EXPECT_EQ(head.value()->value, 1111);  // observed the winner's commit
    head.value()->value = 2222;
    ASSERT_TRUE(rt.end_session().is_ok());
  });
  EXPECT_EQ(home_sum(0), 2222 + 1 + 2);
  const ArbiterStats stats = home_arbiter_stats();
  EXPECT_GE(stats.wounds, 1u);
  EXPECT_EQ(stats.conflicts, 1u);
  expect_no_leaks();
}

TEST_F(MultiSessionTest, YoungerWriterMeetsOlderReaderAndLosesImmediately) {
  build_world(/*faults=*/false);
  // The younger session prepares first: the older one still holds a shared
  // lock on the object, and wound-wait never wounds an older session — the
  // younger loses on the spot, the older commits untouched.
  g1_->run([](Runtime& rt) { dirty_list(rt, 0, 1111); });
  g2_->run([](Runtime& rt) { dirty_list(rt, 0, 2222); });
  g2_->run([](Runtime& rt) {
    Status ended = rt.end_session();
    ASSERT_FALSE(ended.is_ok());
    EXPECT_EQ(ended.code(), StatusCode::kConflict) << ended.to_string();
    ASSERT_TRUE(rt.abort_session().is_ok());
  });
  g1_->run([](Runtime& rt) {
    ASSERT_TRUE(rt.end_session().is_ok());  // the older never noticed
    EXPECT_EQ(rt.stats().wb_conflicts, 0u);
  });
  EXPECT_EQ(home_sum(0), 1111 + 1 + 2);
  const ArbiterStats stats = home_arbiter_stats();
  EXPECT_EQ(stats.conflicts, 1u);
  EXPECT_GE(stats.lock_waits, 1u);
  expect_no_leaks();
}

TEST_F(MultiSessionTest, WoundWaitCycleResolvesWithoutDeadlock) {
  build_world(/*faults=*/false);
  // Classic cycle that deadlocks blocking lock tables: S1 reads {X,Y}
  // writes Y, S2 reads {Y,Z} writes Z, S3 reads {Z,X} writes X, all open
  // at once. Wound-wait is non-blocking, so the commits resolve in
  // bounded time with exactly one loser (S2, wounded by the older S1).
  auto open_and_write = [](Runtime& rt, std::int64_t read_extra,
                           std::int64_t write, std::int64_t value) {
    EXPECT_TRUE(rt.begin_session().is_ok());
    auto r = typed_call<ListNode*>(rt, 0, "list", read_extra);
    EXPECT_TRUE(r.is_ok()) << r.status().to_string();
    EXPECT_TRUE(rt.prefetch(r.value(), 1 << 16).is_ok());
    auto w = typed_call<ListNode*>(rt, 0, "list", write);
    EXPECT_TRUE(w.is_ok()) << w.status().to_string();
    EXPECT_TRUE(rt.prefetch(w.value(), 1 << 16).is_ok());
    w.value()->value = value;
  };
  g1_->run([&](Runtime& rt) { open_and_write(rt, 0, 1, 1001); });  // X=0 Y=1
  g2_->run([&](Runtime& rt) { open_and_write(rt, 1, 2, 2002); });  // Y   Z=2
  g3_->run([&](Runtime& rt) { open_and_write(rt, 2, 0, 3003); });  // Z   X

  g1_->run([](Runtime& rt) { ASSERT_TRUE(rt.end_session().is_ok()); });
  g2_->run([](Runtime& rt) {
    Status ended = rt.end_session();
    ASSERT_FALSE(ended.is_ok());  // wounded by S1's write to Y
    EXPECT_EQ(ended.code(), StatusCode::kConflict) << ended.to_string();
    ASSERT_TRUE(rt.abort_session().is_ok());
  });
  g3_->run([](Runtime& rt) { ASSERT_TRUE(rt.end_session().is_ok()); });
  // The loser's retry sees both winners' values and lands.
  g2_->run([&](Runtime& rt) {
    open_and_write(rt, 1, 2, 2002);
    ASSERT_TRUE(rt.end_session().is_ok());
  });

  EXPECT_EQ(home_sum(1), 1001 + 101 + 102);
  EXPECT_EQ(home_sum(2), 2002 + 201 + 202);
  EXPECT_EQ(home_sum(0), 3003 + 1 + 2);
  const ArbiterStats stats = home_arbiter_stats();
  EXPECT_EQ(stats.conflicts, 1u);
  EXPECT_GE(stats.wounds, 1u);
  expect_no_leaks();
}

TEST_F(MultiSessionTest, SiblingTeardownIsolated) {
  build_world(/*faults=*/false);
  // Two Session objects on one space: aborting (or destroying) one must
  // not unwind its sibling — the regression the scalar single-session
  // runtime state would cause.
  g1_->run([](Runtime& rt) {
    Session keeper(rt);
    ListNode* kept = nullptr;
    {
      Session doomed(rt);
      auto k = keeper.call<ListNode*>(0, "list", std::int64_t{2});
      ASSERT_TRUE(k.is_ok()) << k.status().to_string();
      ASSERT_TRUE(keeper.prefetch(k.value(), 1 << 16).is_ok());
      k.value()->value = 4242;
      kept = k.value();

      auto d = doomed.call<ListNode*>(0, "list", std::int64_t{3});
      ASSERT_TRUE(d.is_ok()) << d.status().to_string();
      ASSERT_TRUE(doomed.prefetch(d.value(), 1 << 16).is_ok());
      d.value()->value = 9999;
      ASSERT_TRUE(doomed.abort().is_ok());
      EXPECT_EQ(rt.stats().sessions_aborted, 1u);
    }
    // The sibling's overlay survived the abort: the dirtied page is still
    // resident and the commit ships it.
    EXPECT_EQ(kept->value, 4242);
    ASSERT_TRUE(keeper.end().is_ok());
    EXPECT_EQ(rt.stats().sessions_committed, 1u);
    EXPECT_EQ(rt.active_sessions(), 0u);
  });
  EXPECT_EQ(home_sum(2), 4242 + 201 + 202);   // keeper committed
  EXPECT_EQ(home_sum(3), original_sum(3));    // doomed rolled back
  expect_no_leaks();
}

TEST_F(MultiSessionTest, ParallelGroundsCommitDisjointSessions) {
  build_world(/*faults=*/false);
  // True parallelism: three ground workers run five sessions each against
  // the one home simultaneously. Disjoint objects — every commit must land
  // with zero conflicts and zero coherency violations.
  constexpr int kRounds = 5;
  std::atomic<int> committed{0};
  auto ground = [&committed](std::int64_t which) {
    return [which, &committed](Runtime& rt) {
      for (int round = 0; round < kRounds; ++round) {
        Session session(rt);
        auto head = session.call<ListNode*>(0, "list", which);
        ASSERT_TRUE(head.is_ok()) << head.status().to_string();
        ASSERT_TRUE(session.prefetch(head.value(), 1 << 16).is_ok());
        head.value()->value = which * 10000 + round;
        ASSERT_TRUE(session.end().is_ok());
        committed.fetch_add(1, std::memory_order_relaxed);
      }
    };
  };
  world_->run_concurrent({{g1_, ground(0)}, {g2_, ground(1)}, {g3_, ground(2)}});
  EXPECT_EQ(committed.load(), 3 * kRounds);
  for (std::int64_t w = 0; w < 3; ++w) {
    EXPECT_EQ(home_sum(w), w * 10000 + (kRounds - 1) + (w * 100 + 1) +
                               (w * 100 + 2));
  }
  const ArbiterStats stats = home_arbiter_stats();
  EXPECT_EQ(stats.conflicts, 0u);
  EXPECT_EQ(stats.wounds, 0u);
  // The merged world metrics keep per-space concurrency series visible.
  const std::string metrics = world_->metrics_json();
  EXPECT_NE(metrics.find("concurrency.active_sessions"), std::string::npos);
  EXPECT_NE(metrics.find("\"home\""), std::string::npos);
  expect_no_leaks();
}

TEST_F(MultiSessionTest, PipelinedSessionsShareTheHomeWithoutCrosstalk) {
  build_world(/*faults=*/false);
  // Two grounds each keep a depth-4 CALL pipeline outstanding against the
  // one home at the same time, collect out of order, then commit a write
  // to their own list. The home interleaves both pipelines; every reply
  // must land in the issuing session's slot (never the sibling's), and the
  // disjoint writes must commit without arbitration noise.
  std::atomic<int> collected{0};
  auto ground = [&collected](std::int64_t which) {
    return [which, &collected](Runtime& rt) {
      Session session(rt);
      // Pipeline sums of lists 2 and 3 — lists neither ground writes, so
      // the expected values are stable however the commits interleave.
      constexpr std::int64_t kReadLists[] = {2, 3, 2, 3};
      std::vector<TypedCallFuture<std::int64_t>> futures;
      for (std::int64_t w : kReadLists) {
        auto fut = session.call_async<std::int64_t>(0, "sum", w);
        ASSERT_TRUE(fut.is_ok()) << fut.status().to_string();
        futures.push_back(std::move(fut.value()));
      }
      EXPECT_EQ(rt.endpoint().inflight(), 4u);
      for (int i = 3; i >= 0; --i) {
        auto sum = futures[static_cast<std::size_t>(i)].get();
        ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
        EXPECT_EQ(sum.value(), original_sum(kReadLists[i]));
        collected.fetch_add(1, std::memory_order_relaxed);
      }
      auto head = session.call<ListNode*>(0, "list", which);
      ASSERT_TRUE(head.is_ok()) << head.status().to_string();
      ASSERT_TRUE(session.prefetch(head.value(), 1 << 16).is_ok());
      head.value()->value = 7000 + which;
      ASSERT_TRUE(session.end().is_ok());
    };
  };
  world_->run_concurrent({{g1_, ground(0)}, {g2_, ground(1)}});
  EXPECT_EQ(collected.load(), 8);
  EXPECT_EQ(home_sum(0), 7000 + 1 + 2);
  EXPECT_EQ(home_sum(1), 7001 + 101 + 102);
  const ArbiterStats stats = home_arbiter_stats();
  EXPECT_EQ(stats.conflicts, 0u);
  EXPECT_EQ(stats.wounds, 0u);
  expect_no_leaks();
}

TEST_F(MultiSessionTest, FaultInjectedParallelSoakLeaksNothing) {
  build_world(/*faults=*/true);
  FaultTransport* fault = world_->fault();
  ASSERT_NE(fault, nullptr);
  FaultOptions fo;
  fo.seed = 0x5E55105EEDull;
  fo.drop = 0.03;
  fo.duplicate = 0.05;
  fo.delay = 0.04;
  fault->target_all();
  fault->arm(fo);

  // Eight committed sessions per ground, three grounds in parallel, under
  // drop/duplicate/delay injection. A failed end_session is retried (the
  // two-phase protocol rolls forward); a conflict aborts and retries under
  // a fresh session. Every session must eventually commit.
  constexpr int kCommitsPerGround = 8;
  constexpr int kMaxAttempts = 20;
  std::atomic<int> committed{0};
  std::atomic<int> stuck{0};
  auto ground = [&](std::int64_t which) {
    return [which, &committed, &stuck](Runtime& rt) {
      for (int round = 0; round < kCommitsPerGround; ++round) {
        auto id = rt.begin_session();
        ASSERT_TRUE(id.is_ok());  // local-only in multi-session mode
        // Reads retry inside the session (a failed idempotent fetch leaves
        // nothing to unwind); the commit then rolls the same session
        // forward through transient faults — the two-phase protocol is
        // built to converge on retry, so abandoning (and losing an abort's
        // INVALIDATE on the faulty wire) is never necessary.
        ListNode* head = nullptr;
        for (int attempt = 0; attempt < kMaxAttempts && head == nullptr;
             ++attempt) {
          auto h = typed_call<ListNode*>(rt, 0, "list", which);
          if (h.is_ok() && rt.prefetch(h.value(), 1 << 16).is_ok()) {
            head = h.value();
          }
        }
        if (head == nullptr) {
          stuck.fetch_add(1, std::memory_order_relaxed);
          (void)rt.abort_session(id.value());
          continue;
        }
        head->value = which * 100000 + round;
        Status ended = rt.end_session(id.value());
        for (int retry = 0; retry < kMaxAttempts && !ended.is_ok() &&
                            ended.code() != StatusCode::kConflict;
             ++retry) {
          ended = rt.end_session(id.value());
        }
        if (ended.is_ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
        } else {
          stuck.fetch_add(1, std::memory_order_relaxed);
          (void)rt.abort_session(id.value());
        }
      }
    };
  };
  world_->run_concurrent({{g1_, ground(0)}, {g2_, ground(1)}, {g3_, ground(2)}});
  fault->disarm();

  EXPECT_EQ(stuck.load(), 0);
  EXPECT_EQ(committed.load(), 3 * kCommitsPerGround);
  for (std::int64_t w = 0; w < 3; ++w) {
    EXPECT_EQ(home_sum(w), w * 100000 + (kCommitsPerGround - 1) +
                               (w * 100 + 1) + (w * 100 + 2));
  }
  expect_no_leaks();
}

}  // namespace
}  // namespace srpc
