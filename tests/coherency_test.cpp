// Coherency protocol (paper §3.4): the modified data set travels with the
// thread of control; write-back and invalidation close the session.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/smart_rpc.hpp"
#include "net/fault_transport.hpp"
#include "workload/list.hpp"

namespace srpc {
namespace {

using workload::ListNode;

WorldOptions fast_world() {
  WorldOptions options;
  options.cost = CostModel::zero();
  return options;
}

class CoherencyTest : public ::testing::Test {
 protected:
  CoherencyTest() : world_(fast_world()) {
    a_ = &world_.create_space("A");
    b_ = &world_.create_space("B");
    c_ = &world_.create_space("C");
    workload::register_list_type(world_).status().check();
  }

  World world_;
  AddressSpace* a_ = nullptr;
  AddressSpace* b_ = nullptr;
  AddressSpace* c_ = nullptr;
};

// B modifies A's data, then B calls C: C must observe B's values (the
// modified set travelled A -> B -> C without touching the home).
TEST_F(CoherencyTest, ModifiedSetTravelsToThirdSpace) {
  const SpaceId c_id = c_->id();
  ASSERT_TRUE(c_->bind("sum",
                       [](CallContext&, ListNode* head) -> std::int64_t {
                         return workload::sum_list(head);
                       })
                  .is_ok());
  ASSERT_TRUE(b_->bind("bump_then_forward",
                       [c_id](CallContext& ctx, ListNode* head) -> std::int64_t {
                         for (ListNode* n = head; n != nullptr; n = n->next) {
                           n->value += 1000;
                         }
                         auto sum = typed_call<std::int64_t>(ctx.runtime, c_id, "sum",
                                                             head);
                         sum.status().check();
                         return sum.value();
                       })
                  .is_ok());

  a_->run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 8, [](std::uint32_t i) {
      return static_cast<std::int64_t>(i);
    });
    head.status().check();
    Session session(rt);
    auto sum = session.call<std::int64_t>(b_->id(), "bump_then_forward", head.value());
    ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
    EXPECT_EQ(sum.value(), 28 + 8 * 1000);  // C saw the bumped values
    // And after the return the home sees them too.
    EXPECT_EQ(workload::sum_list(head.value()), 28 + 8 * 1000);
    ASSERT_TRUE(session.end().is_ok());
  });
}

// Updates accumulate across multiple spaces touching the same data.
TEST_F(CoherencyTest, SequentialUpdatesFromTwoSpacesCompose)
{
  ASSERT_TRUE(b_->bind("add",
                       [](CallContext&, ListNode* head, std::int64_t delta)
                           -> std::int64_t {
                         std::int64_t sum = 0;
                         for (ListNode* n = head; n != nullptr; n = n->next) {
                           n->value += delta;
                           sum += n->value;
                         }
                         return sum;
                       })
                  .is_ok());
  ASSERT_TRUE(c_->bind("add",
                       [](CallContext&, ListNode* head, std::int64_t delta)
                           -> std::int64_t {
                         std::int64_t sum = 0;
                         for (ListNode* n = head; n != nullptr; n = n->next) {
                           n->value += delta;
                           sum += n->value;
                         }
                         return sum;
                       })
                  .is_ok());

  a_->run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 4, [](std::uint32_t) { return std::int64_t{1}; });
    head.status().check();
    Session session(rt);
    auto s1 = session.call<std::int64_t>(b_->id(), "add", head.value(), std::int64_t{10});
    ASSERT_TRUE(s1.is_ok());
    EXPECT_EQ(s1.value(), 4 * 11);
    // C sees B's updates because the RETURN brought them home and the next
    // CALL re-seeds C's fetches from the updated home.
    auto s2 = session.call<std::int64_t>(c_->id(), "add", head.value(), std::int64_t{100});
    ASSERT_TRUE(s2.is_ok());
    EXPECT_EQ(s2.value(), 4 * 111);
    EXPECT_EQ(workload::sum_list(head.value()), 4 * 111);
    ASSERT_TRUE(session.end().is_ok());
  });
}

// The ground thread's own callback handler sees remote writes mid-session.
TEST_F(CoherencyTest, CallbackObservesWritesMidSession) {
  const SpaceId a_id = a_->id();
  ASSERT_TRUE(b_->bind("bump_then_callback",
                       [a_id](CallContext& ctx, ListNode* head) -> std::int64_t {
                         head->value = 777;
                         auto seen = typed_call<std::int64_t>(ctx.runtime, a_id,
                                                              "peek", std::int64_t{0});
                         seen.status().check();
                         return seen.value();
                       })
                  .is_ok());

  a_->run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 1, [](std::uint32_t) { return std::int64_t{1}; });
    head.status().check();
    ListNode* list = head.value();
    bind_procedure(rt, "peek", [list](CallContext&, std::int64_t) -> std::int64_t {
      return list->value;  // home data, read during the callback
    }).check();

    Session session(rt);
    auto seen = session.call<std::int64_t>(b_->id(), "bump_then_callback", list);
    ASSERT_TRUE(seen.is_ok()) << seen.status().to_string();
    EXPECT_EQ(seen.value(), 777);
    ASSERT_TRUE(session.end().is_ok());
  });
}

// Session end without any further call: the write-back message carries the
// dirty data home, and every space's cache is invalidated.
TEST_F(CoherencyTest, WriteBackAndInvalidateAtSessionEnd) {
  ASSERT_TRUE(b_->bind("give",
                       [](CallContext& ctx, std::int32_t n) -> ListNode* {
                         auto head = workload::build_list(
                             ctx.runtime, static_cast<std::uint32_t>(n),
                             [](std::uint32_t) { return std::int64_t{2}; });
                         head.status().check();
                         return head.value();
                       })
                  .is_ok());
  ASSERT_TRUE(b_->bind("check_sum",
                       [](CallContext& ctx, ListNode* head) -> std::int64_t {
                         (void)ctx;
                         return workload::sum_list(head);  // home-side read
                       })
                  .is_ok());

  ListNode* remote = nullptr;
  a_->run([&](Runtime& rt) {
    Session session(rt);
    auto head = session.call<ListNode*>(b_->id(), "give", 6);
    ASSERT_TRUE(head.is_ok());
    remote = head.value();
    workload::scale_list(remote, 10);  // cache writes only
    ASSERT_TRUE(session.end().is_ok());
    // After invalidation our own cache is empty.
    EXPECT_EQ(rt.cache().table().size(), 0u);
  });

  // New session: fetch fresh from B and observe the written-back values.
  a_->run([&](Runtime& rt) {
    Session session(rt);
    auto head = session.call<ListNode*>(b_->id(), "give", 1);
    ASSERT_TRUE(head.is_ok());
    ASSERT_TRUE(session.end().is_ok());
  });
  b_->run([&](Runtime& rt) {
    EXPECT_EQ(rt.heap().live_allocations(), 7u);  // 6 + 1
    return 0;
  });
}

// Stats-level check that the modified set actually rides CALL/RETURN.
TEST_F(CoherencyTest, DirtyDataRidesControlTransfers) {
  ASSERT_TRUE(b_->bind("touch",
                       [](CallContext&, ListNode* head) -> std::int64_t {
                         head->value += 1;
                         return head->value;
                       })
                  .is_ok());
  a_->run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 1, [](std::uint32_t) { return std::int64_t{0}; });
    head.status().check();
    Session session(rt);
    // Three calls; each RETURN must apply the single dirty node at home.
    for (int i = 1; i <= 3; ++i) {
      auto v = session.call<std::int64_t>(b_->id(), "touch", head.value());
      ASSERT_TRUE(v.is_ok());
      EXPECT_EQ(v.value(), i);
      EXPECT_EQ(head.value()->value, i);
    }
    ASSERT_TRUE(session.end().is_ok());
  });
}

// Delta-encoded and full-image modified sets must be observationally
// identical: the same seeded workload, run under the same fault schedule
// (duplicated and delayed deliveries forcing retries), has to leave the
// home heap byte-for-byte equal either way.
class DeltaEquivalenceTest : public ::testing::Test {
 protected:
  static std::vector<std::int64_t> run_workload(bool deltas) {
    WorldOptions options;
    options.cost = CostModel::zero();
    options.fault_injection = true;
    options.timeouts = TimeoutConfig::aggressive();
    options.modified_deltas = deltas;
    World world(options);
    AddressSpace& a = world.create_space("A");
    AddressSpace& b = world.create_space("B");
    AddressSpace& c = world.create_space("C");
    workload::register_list_type(world).status().check();

    const SpaceId c_id = c.id();
    c.bind("add_even",
           [](CallContext&, ListNode* head) -> std::int64_t {
             std::int64_t sum = 0;
             std::uint32_t i = 0;
             for (ListNode* n = head; n != nullptr; n = n->next, ++i) {
               if (i % 2 == 0) n->value += 7;
               sum += n->value;
             }
             return sum;
           })
        .check();
    b.bind("sparse_then_forward",
           [c_id](CallContext& ctx, ListNode* head) -> std::int64_t {
             std::uint32_t i = 0;
             for (ListNode* n = head; n != nullptr; n = n->next, ++i) {
               if (i % 4 == 0) n->value += 100;
             }
             auto sum =
                 typed_call<std::int64_t>(ctx.runtime, c_id, "add_even", head);
             sum.status().check();
             return sum.value();
           })
        .check();

    FaultOptions faults;
    faults.seed = 0xD1FFBEEF;
    faults.duplicate = 1.0;  // every delivery replayed: applications repeat
    world.fault()->arm(faults);

    std::vector<std::int64_t> values;
    a.run([&](Runtime& rt) {
      auto head = workload::build_list(rt, 16, [](std::uint32_t i) {
        return static_cast<std::int64_t>(i * 3);
      });
      head.status().check();
      Session session(rt);
      auto sum = session.call<std::int64_t>(b.id(), "sparse_then_forward",
                                            head.value());
      sum.status().check();
      session.end().check();  // write-back rides the same fault schedule
      for (ListNode* n = head.value(); n != nullptr; n = n->next) {
        values.push_back(n->value);
      }
    });
    world.fault()->disarm();
    return values;
  }
};

TEST_F(DeltaEquivalenceTest, DeltaAndFullImageAgreeUnderFaults) {
  const std::vector<std::int64_t> with_deltas = run_workload(true);
  const std::vector<std::int64_t> without_deltas = run_workload(false);
  ASSERT_EQ(with_deltas.size(), 16u);
  ASSERT_EQ(with_deltas.size(), without_deltas.size());
  EXPECT_EQ(0, std::memcmp(with_deltas.data(), without_deltas.data(),
                           with_deltas.size() * sizeof(std::int64_t)));
  // Sanity: the workload really did what it claims.
  for (std::size_t i = 0; i < with_deltas.size(); ++i) {
    std::int64_t expect = static_cast<std::int64_t>(i) * 3;
    if (i % 4 == 0) expect += 100;
    if (i % 2 == 0) expect += 7;
    EXPECT_EQ(with_deltas[i], expect) << "node " << i;
  }
}

}  // namespace
}  // namespace srpc
