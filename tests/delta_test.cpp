// Delta-encoded modified sets (PROTOCOL.md "MODIFIED_DELTA"): byte-range
// primitives, the wire codec, cache twin/overlay plumbing, and the
// runtime's epoch/fingerprint shipping decisions.
#include <gtest/gtest.h>

#include <cstring>

#include "common/byte_range.hpp"
#include "core/cache_manager.hpp"
#include "core/smart_rpc.hpp"
#include "rpc/wire.hpp"
#include "workload/list.hpp"
#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace srpc {
namespace {

using workload::ListNode;

// --- byte-range primitives -------------------------------------------------

TEST(ByteRangeTest, MergeCoalescesOverlappingAndAdjacent) {
  std::vector<ByteRange> r{{10, 4}, {0, 4}, {4, 2}, {12, 8}};
  merge_ranges(r);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].offset, 0u);
  EXPECT_EQ(r[0].len, 6u);
  EXPECT_EQ(r[1].offset, 10u);
  EXPECT_EQ(r[1].len, 10u);
}

TEST(ByteRangeTest, DiffFindsChangedRunsAndAbsorbsSmallGaps) {
  std::uint8_t twin[32] = {};
  std::uint8_t cur[32] = {};
  cur[2] = 1;           // run one
  cur[4] = 2;           // gap of 1 < merge_gap: absorbed into run one
  cur[20] = 3;          // far away: its own run
  std::vector<ByteRange> out;
  diff_ranges(cur, twin, 32, /*base=*/100, /*merge_gap=*/4, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].offset, 102u);
  EXPECT_EQ(out[0].len, 3u);  // bytes 2..4 inclusive
  EXPECT_EQ(out[1].offset, 120u);
  EXPECT_EQ(out[1].len, 1u);
  // Identical images: no ranges.
  out.clear();
  diff_ranges(twin, twin, 32, 0, 4, out);
  EXPECT_TRUE(out.empty());
}

TEST(ByteRangeTest, IntersectionRequiresActualOverlap) {
  const std::vector<ByteRange> a{{0, 4}, {16, 8}};
  const std::vector<ByteRange> b{{4, 8}, {24, 4}};
  const std::vector<ByteRange> c{{20, 2}};
  EXPECT_FALSE(ranges_intersect(a, b));  // all touching, none overlapping
  EXPECT_TRUE(ranges_intersect(a, c));
  EXPECT_EQ(ranges_bytes(a), 12u);
}

TEST(ByteRangeTest, FingerprintTracksCoveredContent) {
  std::uint8_t image[16] = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<ByteRange> ranges{{0, 4}};
  const std::uint64_t fp1 = fingerprint_ranges(image, ranges);
  image[2] ^= 0xFF;
  const std::uint64_t fp2 = fingerprint_ranges(image, ranges);
  EXPECT_NE(fp1, fp2);
  image[9] ^= 0xFF;  // outside every range: no effect
  EXPECT_EQ(fingerprint_ranges(image, ranges), fp2);
  // Same bytes under a different covering must fingerprint differently.
  const std::vector<ByteRange> shifted{{1, 4}};
  EXPECT_NE(fingerprint_ranges(image, ranges), fingerprint_ranges(image, shifted));
}

// --- wire codec ------------------------------------------------------------

TEST(ModifiedDeltaWireTest, RoundtripsRangesAndBytes) {
  std::uint8_t image[64];
  for (int i = 0; i < 64; ++i) image[i] = static_cast<std::uint8_t>(i * 3);
  const LongPointer id{2, 0xBEEF, 7};
  const std::vector<ByteRange> ranges{{4, 3}, {40, 10}};

  ByteBuffer buf;
  xdr::Encoder enc(buf);
  encode_modified_delta(enc, id, /*epoch=*/42, ranges, image);
  EXPECT_EQ(buf.size(), modified_delta_wire_size(ranges));

  xdr::Decoder dec(buf);
  auto delta = decode_modified_delta(dec);
  ASSERT_TRUE(delta.is_ok()) << delta.status().to_string();
  EXPECT_EQ(delta.value().id, id);
  EXPECT_EQ(delta.value().epoch, 42u);
  ASSERT_EQ(delta.value().ranges.size(), 2u);
  ASSERT_EQ(delta.value().bytes.size(), 13u);
  EXPECT_EQ(std::memcmp(delta.value().bytes.data(), image + 4, 3), 0);
  EXPECT_EQ(std::memcmp(delta.value().bytes.data() + 3, image + 40, 10), 0);
}

TEST(ModifiedDeltaWireTest, RejectsOutOfOrderRanges) {
  std::uint8_t image[64] = {};
  ByteBuffer buf;
  xdr::Encoder enc(buf);
  // Hand-encode a malformed entry: overlapping, out-of-order ranges.
  encode_long_pointer(enc, LongPointer{1, 0x10, 3});
  enc.put_u64(1);  // epoch
  enc.put_u32(2);  // nranges
  enc.put_u32(8);
  enc.put_u32(8);
  enc.put_opaque_fixed({image, 8});
  enc.put_u32(4);  // offset < previous end
  enc.put_u32(8);
  enc.put_opaque_fixed({image, 8});

  xdr::Decoder dec(buf);
  auto delta = decode_modified_delta(dec);
  ASSERT_FALSE(delta.is_ok());
  EXPECT_EQ(delta.status().code(), StatusCode::kProtocolError);
}

// --- cache options validation ---------------------------------------------

class NeverFetch final : public PageFetcher {
 public:
  Result<ByteBuffer> fetch(SpaceId, std::span<const LongPointer>,
                           std::uint64_t, SessionId) override {
    return internal_error("no fetch expected");
  }
  void charge_fault() override {}
  Result<std::uint64_t> swizzle_home(const LongPointer&, TypeId) override {
    return internal_error("no swizzle expected");
  }
};

TEST(CacheOptionsTest, InitRejectsZeroPageCount) {
  TypeRegistry registry;
  LayoutEngine layouts(registry);
  NeverFetch fetcher;
  CacheOptions options;
  options.page_count = 0;
  CacheManager cache(registry, layouts, host_arch(), 0, options, fetcher);
  Status init = cache.init();
  ASSERT_FALSE(init.is_ok());
  EXPECT_EQ(init.code(), StatusCode::kInvalidArgument);
}

TEST(CacheOptionsTest, InitRejectsClosureLargerThanArena) {
  TypeRegistry registry;
  LayoutEngine layouts(registry);
  NeverFetch fetcher;
  CacheOptions options;
  options.page_count = 4;
  options.page_size = 4096;
  options.closure_bytes = 5 * 4096;
  CacheManager cache(registry, layouts, host_arch(), 0, options, fetcher);
  Status init = cache.init();
  ASSERT_FALSE(init.is_ok());
  EXPECT_EQ(init.code(), StatusCode::kInvalidArgument);
}

TEST(CacheOptionsTest, SetClosureBytesValidatesAgainstArena) {
  TypeRegistry registry;
  LayoutEngine layouts(registry);
  NeverFetch fetcher;
  CacheOptions options;
  options.page_count = 4;
  options.page_size = 4096;
  CacheManager cache(registry, layouts, host_arch(), 0, options, fetcher);
  ASSERT_TRUE(cache.init().is_ok());
  EXPECT_TRUE(cache.set_closure_bytes(0).is_ok());  // legitimate: force FETCHes
  EXPECT_TRUE(cache.set_closure_bytes(4 * 4096).is_ok());
  Status too_big = cache.set_closure_bytes(4 * 4096 + 1);
  ASSERT_FALSE(too_big.is_ok());
  EXPECT_EQ(too_big.code(), StatusCode::kInvalidArgument);
}

// --- runtime shipping decisions --------------------------------------------

WorldOptions fast_world() {
  WorldOptions options;
  options.cost = CostModel::zero();
  return options;
}

class DeltaRuntimeTest : public ::testing::Test {
 protected:
  explicit DeltaRuntimeTest(WorldOptions options = fast_world())
      : world_(options) {
    a_ = &world_.create_space("A");
    b_ = &world_.create_space("B");
    c_ = &world_.create_space("C");
    workload::register_list_type(world_).status().check();
  }

  RuntimeStats stats_of(AddressSpace* space) {
    return space->run([](Runtime& rt) { return rt.stats(); });
  }

  World world_;
  AddressSpace* a_ = nullptr;
  AddressSpace* b_ = nullptr;
  AddressSpace* c_ = nullptr;
};

// A wide object whose type the delta machinery can beat: 256 bytes of
// scalars. A sparse write inside it must travel as a byte-range delta,
// not as the full image.
struct Blob {
  std::int64_t vals[32];
};

TEST_F(DeltaRuntimeTest, SparseUpdateShipsAsDelta) {
  auto blob_type = world_.describe<Blob>("Blob");
  blob_type.array_field("vals", &Blob::vals);
  world_.register_type(blob_type).status().check();

  ASSERT_TRUE(b_->bind("bump_third",
                       [](CallContext&, Blob* blob) -> std::int64_t {
                         blob->vals[3] += 5;
                         return blob->vals[3];
                       })
                  .is_ok());
  a_->run([&](Runtime& rt) {
    auto type = rt.host_types().find<Blob>();
    type.status().check();
    auto mem = rt.heap().allocate(type.value());
    mem.status().check();
    auto* blob = static_cast<Blob*>(mem.value());
    for (int i = 0; i < 32; ++i) blob->vals[i] = i;
    Session session(rt);
    auto v = session.call<std::int64_t>(b_->id(), "bump_third", blob);
    ASSERT_TRUE(v.is_ok()) << v.status().to_string();
    EXPECT_EQ(v.value(), 8);
    EXPECT_EQ(blob->vals[3], 8);   // applied at home from the delta
    EXPECT_EQ(blob->vals[4], 4);   // neighbours untouched
    ASSERT_TRUE(session.end().is_ok());
  });
  const RuntimeStats b_stats = stats_of(b_);
  EXPECT_GT(b_stats.delta_bytes_shipped, 0u);
  // One 8-byte write in a 256-byte object: the delta section must undercut
  // even a single full image of the blob.
  EXPECT_LT(b_stats.delta_bytes_shipped, sizeof(Blob));
}

// Toggling the capability off forces the legacy full-image format.
TEST(DeltaDisabledTest, NoDeltaBytesWhenDisabled) {
  WorldOptions options;
  options.cost = CostModel::zero();
  options.modified_deltas = false;
  World world(options);
  AddressSpace& a = world.create_space("A");
  AddressSpace& b = world.create_space("B");
  workload::register_list_type(world).status().check();
  ASSERT_TRUE(b.bind("bump_first",
                     [](CallContext&, ListNode* head) -> std::int64_t {
                       head->value += 5;
                       return head->value;
                     })
                  .is_ok());
  a.run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 4, [](std::uint32_t i) {
      return static_cast<std::int64_t>(i);
    });
    head.status().check();
    Session session(rt);
    auto v = session.call<std::int64_t>(b.id(), "bump_first", head.value());
    ASSERT_TRUE(v.is_ok());
    EXPECT_EQ(head.value()->value, 5);
    ASSERT_TRUE(session.end().is_ok());
  });
  const RuntimeStats b_stats = b.run([](Runtime& rt) { return rt.stats(); });
  EXPECT_EQ(b_stats.delta_bytes_shipped, 0u);
  EXPECT_GT(b_stats.modified_bytes_shipped, 0u);
}

// An object already shipped to a hop (and not re-dirtied) is skipped on the
// next transfer to that hop: the epoch/fingerprint pair remembers it.
TEST_F(DeltaRuntimeTest, RepeatShipmentsToSameHopAreSkipped) {
  const SpaceId c_id = c_->id();
  ASSERT_TRUE(c_->bind("sum",
                       [](CallContext&, ListNode* head) -> std::int64_t {
                         return workload::sum_list(head);
                       })
                  .is_ok());
  ASSERT_TRUE(b_->bind("bump_then_forward_twice",
                       [c_id](CallContext& ctx, ListNode* head) -> std::int64_t {
                         head->value += 100;
                         auto s1 = typed_call<std::int64_t>(ctx.runtime, c_id,
                                                            "sum", head);
                         s1.status().check();
                         // Nothing re-dirtied: the second CALL to C must not
                         // re-ship the same delta.
                         auto s2 = typed_call<std::int64_t>(ctx.runtime, c_id,
                                                            "sum", head);
                         s2.status().check();
                         return s1.value() + s2.value();
                       })
                  .is_ok());
  a_->run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 4, [](std::uint32_t i) {
      return static_cast<std::int64_t>(i);
    });
    head.status().check();
    Session session(rt);
    auto v = session.call<std::int64_t>(b_->id(), "bump_then_forward_twice",
                                        head.value());
    ASSERT_TRUE(v.is_ok()) << v.status().to_string();
    EXPECT_EQ(v.value(), 2 * (100 + 1 + 2 + 3));
    ASSERT_TRUE(session.end().is_ok());
  });
  EXPECT_GE(stats_of(b_).deltas_skipped_by_epoch, 1u);
}

// Pointer-field writes cannot ship as raw ranges (the bytes are swizzled
// local addresses); the runtime must fall back to the graph payload, and
// the relink must still land at home.
TEST_F(DeltaRuntimeTest, PointerRelinkFallsBackToGraphPayload) {
  ASSERT_TRUE(b_->bind("reverse",
                       [](CallContext&, ListNode* head) -> std::int64_t {
                         ListNode* prev = nullptr;
                         std::int64_t n = 0;
                         while (head != nullptr) {
                           ListNode* next = head->next;
                           head->next = prev;
                           prev = head;
                           head = next;
                           ++n;
                         }
                         return n;
                       })
                  .is_ok());
  a_->run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 3, [](std::uint32_t i) {
      return static_cast<std::int64_t>(i + 1);  // 1, 2, 3
    });
    head.status().check();
    ListNode* nodes[3];
    nodes[0] = head.value();
    nodes[1] = nodes[0]->next;
    nodes[2] = nodes[1]->next;
    Session session(rt);
    auto n = session.call<std::int64_t>(b_->id(), "reverse", head.value());
    ASSERT_TRUE(n.is_ok()) << n.status().to_string();
    EXPECT_EQ(n.value(), 3);
    // The home list is now 3 -> 2 -> 1.
    EXPECT_EQ(nodes[2]->next, nodes[1]);
    EXPECT_EQ(nodes[1]->next, nodes[0]);
    EXPECT_EQ(nodes[0]->next, nullptr);
    ASSERT_TRUE(session.end().is_ok());
  });
}

// Delta for a datum the receiver has never cached: it lands on a pending
// overlay and is applied over the fetched baseline at fill time.
TEST(DeltaOverlayTest, NonResidentDeltaAppliedAtFillTime) {
  WorldOptions options;
  options.cost = CostModel::zero();
  options.cache.closure_bytes = 0;  // force explicit FETCHes at C
  World world(options);
  AddressSpace& a = world.create_space("A");
  AddressSpace& b = world.create_space("B");
  AddressSpace& c = world.create_space("C");
  workload::register_list_type(world).status().check();

  const SpaceId c_id = c.id();
  ASSERT_TRUE(c.bind("sum",
                     [](CallContext&, ListNode* head) -> std::int64_t {
                       return workload::sum_list(head);
                     })
                  .is_ok());
  ASSERT_TRUE(b.bind("bump_second_then_forward",
                     [c_id](CallContext& ctx, ListNode* head) -> std::int64_t {
                       head->next->value += 50;
                       // C has cached nothing: the travelling delta for the
                       // second node targets a non-resident slot there.
                       auto sum = typed_call<std::int64_t>(ctx.runtime, c_id,
                                                           "sum", head);
                       sum.status().check();
                       return sum.value();
                     })
                  .is_ok());
  a.run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 2, [](std::uint32_t i) {
      return static_cast<std::int64_t>(i + 1);  // 1, 2
    });
    head.status().check();
    Session session(rt);
    auto sum = session.call<std::int64_t>(b.id(), "bump_second_then_forward",
                                          head.value());
    ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
    EXPECT_EQ(sum.value(), 1 + 2 + 50);  // C saw B's bump over A's baseline
    EXPECT_EQ(head.value()->next->value, 52);  // and it came home
    ASSERT_TRUE(session.end().is_ok());
  });
}

// Overlay x epoch across nested calls: updates accumulate through a chain
// of spaces, each applying the incoming delta (possibly to an overlay),
// re-dirtying, and shipping its own delta on.
TEST_F(DeltaRuntimeTest, NestedUpdatesComposeAcrossOverlays) {
  const SpaceId c_id = c_->id();
  ASSERT_TRUE(c_->bind("bump",
                       [](CallContext&, ListNode* head) -> std::int64_t {
                         head->value += 7;
                         return head->value;
                       })
                  .is_ok());
  ASSERT_TRUE(b_->bind("bump_and_forward",
                       [c_id](CallContext& ctx, ListNode* head) -> std::int64_t {
                         head->value += 3;
                         auto v = typed_call<std::int64_t>(ctx.runtime, c_id,
                                                           "bump", head);
                         v.status().check();
                         // C's bump must be visible here after the RETURN.
                         if (head->value != v.value()) return -1;
                         return v.value();
                       })
                  .is_ok());
  a_->run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 1, [](std::uint32_t) {
      return std::int64_t{1};
    });
    head.status().check();
    Session session(rt);
    auto v = session.call<std::int64_t>(b_->id(), "bump_and_forward",
                                        head.value());
    ASSERT_TRUE(v.is_ok()) << v.status().to_string();
    EXPECT_EQ(v.value(), 1 + 3 + 7);
    EXPECT_EQ(head.value()->value, 11);
    ASSERT_TRUE(session.end().is_ok());
  });
}

}  // namespace
}  // namespace srpc
