// Schema text parser + registry wire codec: the type name-server populated
// from text and verified across "processes".
#include <gtest/gtest.h>

#include "core/smart_rpc.hpp"
#include "types/layout.hpp"
#include "types/registry_codec.hpp"
#include "types/schema_parser.hpp"

namespace srpc {
namespace {

TEST(SchemaParser, PaperTreeNodeSchema) {
  TypeRegistry registry;
  auto types = parse_schema(registry, R"(
    # the paper's experimental subject (two pointers + 8-byte datum)
    struct TreeNode {
      left:  TreeNode*;
      right: TreeNode*;
      data:  i64;
    }
  )");
  ASSERT_TRUE(types.is_ok()) << types.status().to_string();
  ASSERT_TRUE(types.value().contains("TreeNode"));
  const TypeDescriptor& desc = registry.get(types.value().at("TreeNode"));
  ASSERT_EQ(desc.fields().size(), 3u);
  EXPECT_EQ(desc.fields()[0].name, "left");
  EXPECT_EQ(registry.get(desc.fields()[0].type).kind(), TypeKind::kPointer);
  EXPECT_EQ(desc.fields()[2].type, TypeRegistry::scalar_id(ScalarType::kI64));

  LayoutEngine layouts(registry);
  EXPECT_EQ(layouts.size_of(sparc32_arch(), desc.id()), 16u);  // the paper's node
  EXPECT_EQ(layouts.size_of(host_arch(), desc.id()), 24u);
}

TEST(SchemaParser, MutuallyRecursiveStructs) {
  TypeRegistry registry;
  auto types = parse_schema(registry, R"(
    struct A { partner: B*; tag: i32; }
    struct B { partner: A*; tag: i32; }
  )");
  ASSERT_TRUE(types.is_ok()) << types.status().to_string();
  const TypeDescriptor& a = registry.get(types.value().at("A"));
  EXPECT_EQ(registry.get(a.fields()[0].type).pointee(), types.value().at("B"));
}

TEST(SchemaParser, ArraysPointersAndComposition) {
  TypeRegistry registry;
  auto types = parse_schema(registry, R"(
    struct Matrix { cells: f64[16]; }
    struct Sensor {
      name_bytes: u8[32];
      samples:    f32[8];
      matrix:     Matrix;       // nested by value
      neighbors:  Sensor*[4];   // array of pointers
      calib:      f64[4]*;      // pointer to array
    }
  )");
  ASSERT_TRUE(types.is_ok()) << types.status().to_string();
  const TypeDescriptor& sensor = registry.get(types.value().at("Sensor"));
  ASSERT_EQ(sensor.fields().size(), 5u);

  const TypeDescriptor& neighbors = registry.get(sensor.fields()[3].type);
  ASSERT_EQ(neighbors.kind(), TypeKind::kArray);
  EXPECT_EQ(neighbors.count(), 4u);
  EXPECT_EQ(registry.get(neighbors.element()).kind(), TypeKind::kPointer);

  const TypeDescriptor& calib = registry.get(sensor.fields()[4].type);
  ASSERT_EQ(calib.kind(), TypeKind::kPointer);
  EXPECT_EQ(registry.get(calib.pointee()).kind(), TypeKind::kArray);

  LayoutEngine layouts(registry);
  // 32 + (pad to 4) 32 + 128 + 4*8 + 8 on the host = 32+32+128+32+8 = 232.
  EXPECT_EQ(layouts.size_of(host_arch(), sensor.id()), 232u);
}

TEST(SchemaParser, ReportsErrorsWithLineNumbers) {
  TypeRegistry registry;
  auto missing_semi = parse_schema(registry, "struct X {\n  a: i32\n}");
  ASSERT_FALSE(missing_semi.is_ok());
  EXPECT_NE(missing_semi.status().message().find("line 3"), std::string::npos);

  TypeRegistry r2;
  auto unknown = parse_schema(r2, "struct X {\n  a: Nothing;\n}");
  ASSERT_FALSE(unknown.is_ok());
  EXPECT_NE(unknown.status().message().find("unknown type 'Nothing'"),
            std::string::npos);

  TypeRegistry r3;
  auto empty = parse_schema(r3, "struct X { }");
  ASSERT_FALSE(empty.is_ok());

  TypeRegistry r4;
  auto zero_bound = parse_schema(r4, "struct X { a: i32[0]; }");
  ASSERT_FALSE(zero_bound.is_ok());

  TypeRegistry r5;
  auto garbage = parse_schema(r5, "struct X { a: i32; } %%%");
  ASSERT_FALSE(garbage.is_ok());
}

TEST(SchemaParser, DuplicateStructNameRejected) {
  TypeRegistry registry;
  auto dup = parse_schema(registry, "struct X { a: i32; } struct X { b: i32; }");
  ASSERT_FALSE(dup.is_ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(SchemaParser, CanExtendAnExistingRegistry) {
  TypeRegistry registry;
  ASSERT_TRUE(parse_schema(registry, "struct Base { v: i64; }").is_ok());
  auto more = parse_schema(registry, "struct Derived { base: Base*; n: u32; }");
  ASSERT_TRUE(more.is_ok()) << more.status().to_string();
}

TEST(RegistryCodec, IdenticalRegistriesVerify) {
  const char* schema = R"(
    struct Node { next: Node*; value: i64; }
    struct Blob { bytes: u8[64]; owner: Node*; }
  )";
  TypeRegistry ours;
  TypeRegistry theirs;
  ASSERT_TRUE(parse_schema(ours, schema).is_ok());
  ASSERT_TRUE(parse_schema(theirs, schema).is_ok());

  ByteBuffer wire;
  ASSERT_TRUE(encode_registry(theirs, wire).is_ok());
  EXPECT_TRUE(verify_registry(ours, wire).is_ok());
}

TEST(RegistryCodec, DivergentFieldTypeDetected) {
  TypeRegistry ours;
  TypeRegistry theirs;
  ASSERT_TRUE(parse_schema(ours, "struct Node { value: i64; }").is_ok());
  ASSERT_TRUE(parse_schema(theirs, "struct Node { value: i32; }").is_ok());
  ByteBuffer wire;
  ASSERT_TRUE(encode_registry(theirs, wire).is_ok());
  auto verdict = verify_registry(ours, wire);
  ASSERT_FALSE(verdict.is_ok());
  EXPECT_EQ(verdict.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(verdict.message().find("value"), std::string::npos);
}

TEST(RegistryCodec, MissingTypeDetected) {
  TypeRegistry ours;
  TypeRegistry theirs;
  ASSERT_TRUE(parse_schema(ours, "struct Node { value: i64; }").is_ok());
  ASSERT_TRUE(parse_schema(theirs, "struct Node { value: i64; }").is_ok());
  ASSERT_TRUE(parse_schema(theirs, "struct Extra { value: i64; }").is_ok());
  ByteBuffer wire;
  ASSERT_TRUE(encode_registry(theirs, wire).is_ok());
  EXPECT_FALSE(verify_registry(ours, wire).is_ok());
}

TEST(RegistryCodec, FieldNameDivergenceDetected) {
  TypeRegistry ours;
  TypeRegistry theirs;
  ASSERT_TRUE(parse_schema(ours, "struct Node { value: i64; }").is_ok());
  ASSERT_TRUE(parse_schema(theirs, "struct Node { datum: i64; }").is_ok());
  ByteBuffer wire;
  ASSERT_TRUE(encode_registry(theirs, wire).is_ok());
  auto verdict = verify_registry(ours, wire);
  ASSERT_FALSE(verdict.is_ok());
  EXPECT_NE(verdict.message().find("datum"), std::string::npos);
}

// The full loop: schema text -> registry -> runnable world. Proves the
// text-defined types are the same first-class citizens builder-defined
// types are.
TEST(SchemaParser, SchemaTypesDriveRealRpc) {
  struct Node {
    Node* next;
    std::int64_t value;
  };

  WorldOptions options;
  options.cost = CostModel::zero();
  // World owns its registry; feed it the schema then bind the host type.
  World world(options);
  auto types = parse_schema(world.registry(), "struct SNode { next: SNode*; value: i64; }");
  ASSERT_TRUE(types.is_ok());
  ASSERT_TRUE(world.host_types().bind<Node>(types.value().at("SNode")).is_ok());

  auto& a = world.create_space("A");
  auto& b = world.create_space("B");
  b.bind("sum",
         [](CallContext&, Node* head) -> std::int64_t {
           std::int64_t sum = 0;
           for (Node* n = head; n != nullptr; n = n->next) sum += n->value;
           return sum;
         })
      .check();
  a.run([&](Runtime& rt) {
    const TypeId node = rt.host_types().find<Node>().value();
    Node* head = nullptr;
    for (int i = 0; i < 5; ++i) {
      auto mem = rt.heap().allocate(node);
      mem.status().check();
      auto* n = static_cast<Node*>(mem.value());
      n->value = i + 1;
      n->next = head;
      head = n;
    }
    Session session(rt);
    auto sum = session.call<std::int64_t>(b.id(), "sum", head);
    ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
    EXPECT_EQ(sum.value(), 15);
    ASSERT_TRUE(session.end().is_ok());
  });
}

}  // namespace
}  // namespace srpc
