// Space reincarnation: the kill-and-restart chaos matrix. A crashed space
// replays its world-owned RecoveryLog (checkpoint + WAL) into a fresh
// incarnation, announces REJOIN, and the world converges — recovered heaps
// byte-identical to the never-crashed state, in-doubt two-phase stages
// resolved by the replayed decision log (commit rolls forward, anything
// else presumed-abort), and stale frames from the prior life fenced by
// incarnation number. The matrix crosses crash points (before prepare,
// after prepare, after the commit decision, mid-commit, after settle) with
// both modified-set ship modes and with restart before/after the failure
// detector's verdict.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/smart_rpc.hpp"
#include "mem/recovery_log.hpp"
#include "net/fault_transport.hpp"
#include "workload/list.hpp"

namespace srpc {
namespace {

using workload::ListNode;

constexpr SpaceId kA = 0;  // coordinator / ground
constexpr SpaceId kB = 1;  // home
constexpr SpaceId kC = 2;  // home

constexpr std::int64_t kOldB = 10 + 11 + 12;
constexpr std::int64_t kOldC = 20 + 21 + 22;
constexpr std::int64_t kNewB = 1000 + 11 + 12;
constexpr std::int64_t kNewC = 2000 + 21 + 22;

// Parameter: deltas (true) or full graph images (false) — recovery replays
// staged bytes in whichever encoding the commit shipped.
class RecoveryTest : public ::testing::TestWithParam<bool> {
 protected:
  RecoveryTest() {
    WorldOptions options;
    options.cost = CostModel::zero();
    options.cache.closure_bytes = 0;
    options.fault_injection = true;
    options.timeouts = TimeoutConfig::aggressive();
    options.modified_deltas = GetParam();
    options.recovery = true;
    world_ = std::make_unique<World>(options);
    a_ = &world_->create_space("A");
    b_ = &world_->create_space("B");
    c_ = &world_->create_space("C");
    workload::register_list_type(*world_).status().check();
    rebind_b();
    rebind_c();
    b_->run([this](Runtime& rt) {
      auto head = workload::build_list(rt, 3, [](std::uint32_t i) {
        return static_cast<std::int64_t>(10 + i);
      });
      head.status().check();
      head_b_ = head.value();
      // Local data predates the WAL; a checkpoint makes it recoverable.
      rt.checkpoint_now();
    });
    c_->run([this](Runtime& rt) {
      auto head = workload::build_list(rt, 3, [](std::uint32_t i) {
        return static_cast<std::int64_t>(20 + i);
      });
      head.status().check();
      head_c_ = head.value();
      rt.checkpoint_now();
    });
    fault_ = world_->fault();
  }

  ~RecoveryTest() override {
    if (fault_ != nullptr) fault_->disarm();
  }

  // Bindings live in the Runtime, so a reincarnated space re-registers its
  // procedures; the data they serve survived in place (zombie heap +
  // replayed registration).
  void rebind_b() {
    b_->bind("headB", [this](CallContext&) -> ListNode* { return head_b_; })
        .check();
    b_->bind("sumB",
             [this](CallContext&) -> std::int64_t {
               return workload::sum_list(head_b_);
             })
        .check();
  }
  void rebind_c() {
    c_->bind("headC", [this](CallContext&) -> ListNode* { return head_c_; })
        .check();
    c_->bind("sumC",
             [this](CallContext&) -> std::int64_t {
               return workload::sum_list(head_c_);
             })
        .check();
  }

  void drop_all(MessageType kind) {
    FaultOptions opts;
    opts.drop = 1.0;
    fault_->target({kind});
    fault_->arm(opts);
  }

  // Full byte image of a space's live heap — every allocation's tags and
  // contents, via the same serializer the recovery checkpoint uses. Within
  // one world addresses are stable across reincarnations (the zombie heap
  // keeps the storage mapped and replay restore()s the exact ranges), so
  // two images being equal means byte-identical recovered state.
  static std::vector<std::uint8_t> heap_image(AddressSpace& space) {
    return space.run([](Runtime& rt) {
      RecoveryLog scratch;
      scratch.checkpoint(rt.heap());
      return scratch.snapshot().back().bytes;
    });
  }

  void dirty_both_homes(Runtime& rt) {
    ASSERT_TRUE(rt.begin_session().is_ok());
    auto hb = typed_call<ListNode*>(rt, kB, "headB");
    ASSERT_TRUE(hb.is_ok()) << hb.status().to_string();
    ASSERT_TRUE(rt.prefetch(hb.value(), 1 << 16).is_ok());
    auto hc = typed_call<ListNode*>(rt, kC, "headC");
    ASSERT_TRUE(hc.is_ok()) << hc.status().to_string();
    ASSERT_TRUE(rt.prefetch(hc.value(), 1 << 16).is_ok());
    hb.value()->value = 1000;
    hc.value()->value = 2000;
  }

  void expect_homes(std::int64_t expect_b, std::int64_t expect_c) {
    a_->run([&](Runtime& rt) {
      Session session(rt);
      auto sb = typed_call<std::int64_t>(rt, kB, "sumB");
      ASSERT_TRUE(sb.is_ok()) << sb.status().to_string();
      auto sc = typed_call<std::int64_t>(rt, kC, "sumC");
      ASSERT_TRUE(sc.is_ok()) << sc.status().to_string();
      EXPECT_EQ(sb.value(), expect_b);
      EXPECT_EQ(sc.value(), expect_c);
      const bool b_committed = sb.value() == kNewB;
      const bool c_committed = sc.value() == kNewC;
      EXPECT_EQ(b_committed, c_committed)
          << "half-committed session: B=" << sb.value() << " C=" << sc.value();
      ASSERT_TRUE(session.end().is_ok());
    });
  }

  std::unique_ptr<World> world_;
  AddressSpace* a_ = nullptr;
  AddressSpace* b_ = nullptr;
  AddressSpace* c_ = nullptr;
  FaultTransport* fault_ = nullptr;
  ListNode* head_b_ = nullptr;
  ListNode* head_c_ = nullptr;
};

// --- home crash: replay reconstructs the heap ------------------------------

TEST_P(RecoveryTest, CommittedStateSurvivesHomeCrashAfterDetection) {
  a_->run([&](Runtime& rt) {
    dirty_both_homes(rt);
    ASSERT_TRUE(rt.end_session().is_ok());
  });
  const std::vector<std::uint8_t> never_crashed = heap_image(*b_);

  // Crash with the verdict delivered: every peer marks B dead first.
  world_->crash_space(kB);
  a_->run([&](Runtime& rt) {
    EXPECT_EQ(rt.detector().health(kB), PeerHealth::kDead);
    auto sum = typed_call<std::int64_t>(rt, kB, "sumB");
    ASSERT_FALSE(sum.is_ok());
    EXPECT_EQ(sum.status().code(), StatusCode::kSpaceDead);
    ASSERT_TRUE(rt.abort_session().is_ok());
  });

  ASSERT_TRUE(world_->restart_space(kB).is_ok());
  EXPECT_EQ(world_->incarnation(kB), 2u);
  EXPECT_EQ(b_->incarnations_retired(), 1u);
  rebind_b();

  EXPECT_EQ(heap_image(*b_), never_crashed);
  b_->run([](Runtime& rt) {
    EXPECT_GT(rt.stats().recovery_replays, 0u);
    EXPECT_EQ(rt.stats().rejoins_sent, 2u);  // announced to A and C
  });
  // REJOIN reopened the dead verdict; the first exchange completes it.
  a_->run([](Runtime& rt) {
    EXPECT_GE(rt.stats().rejoins_served, 1u);
    EXPECT_EQ(rt.detector().health(kB), PeerHealth::kRejoining);
  });
  expect_homes(kNewB, kNewC);
  a_->run([](Runtime& rt) {
    EXPECT_EQ(rt.detector().health(kB), PeerHealth::kAlive);
  });
}

TEST_P(RecoveryTest, CommittedStateSurvivesHomeCrashBeforeDetection) {
  a_->run([&](Runtime& rt) {
    dirty_both_homes(rt);
    ASSERT_TRUE(rt.end_session().is_ok());
  });
  const std::vector<std::uint8_t> never_crashed = heap_image(*b_);

  // The process dies but no failure verdict circulates — the restart races
  // ahead of detection, so peers first learn anything via the REJOIN.
  fault_->crash_space(kB);
  ASSERT_TRUE(world_->restart_space(kB).is_ok());
  rebind_b();

  EXPECT_EQ(heap_image(*b_), never_crashed);
  expect_homes(kNewB, kNewC);
}

TEST_P(RecoveryTest, MidSessionHomeCrashLeavesCommittedHistoryIntact) {
  const std::vector<std::uint8_t> never_crashed = heap_image(*b_);
  a_->run([&](Runtime& rt) {
    ASSERT_TRUE(rt.begin_session().is_ok());
    auto hb = typed_call<ListNode*>(rt, kB, "headB");
    ASSERT_TRUE(hb.is_ok()) << hb.status().to_string();
    ASSERT_TRUE(rt.prefetch(hb.value(), 1 << 16).is_ok());
    hb.value()->value = 4242;  // dirty, never committed
  });
  world_->crash_space(kB);
  a_->run([&](Runtime& rt) { ASSERT_TRUE(rt.abort_session().is_ok()); });

  ASSERT_TRUE(world_->restart_space(kB).is_ok());
  rebind_b();
  // The uncommitted mutation died with the session; replay restores the
  // last durable state exactly.
  EXPECT_EQ(heap_image(*b_), never_crashed);
  expect_homes(kOldB, kOldC);
}

TEST_P(RecoveryTest, PromotedAllocationsSurviveHomeCrash) {
  a_->run([](Runtime& rt) {
    ASSERT_TRUE(rt.begin_session().is_ok());
    auto type = rt.host_types().find<ListNode>();
    ASSERT_TRUE(type.is_ok());
    auto mem = rt.extended_malloc(kB, type.value(), 2);
    ASSERT_TRUE(mem.is_ok()) << mem.status().to_string();
    ASSERT_TRUE(rt.flush_pending_memory_ops().is_ok());
    auto* nodes = static_cast<ListNode*>(mem.value());
    nodes[0].value = 7;
    nodes[1].value = 9;
    ASSERT_TRUE(rt.end_session().is_ok());
  });
  b_->run([](Runtime& rt) { EXPECT_EQ(rt.heap().owned_bytes(kA), 0u); });
  const std::vector<std::uint8_t> never_crashed = heap_image(*b_);

  fault_->crash_space(kB);
  ASSERT_TRUE(world_->restart_space(kB).is_ok());
  rebind_b();
  // ALLOC_BATCH + staged commit + settle replay end-to-end: the granted
  // storage re-registers at its exact address with its committed bytes and
  // its promoted (owner-free) tags.
  EXPECT_EQ(heap_image(*b_), never_crashed);
  b_->run([](Runtime& rt) { EXPECT_EQ(rt.heap().owned_bytes(kA), 0u); });
}

// --- coordinator crash: the decision log resolves in-doubt stages ----------

TEST_P(RecoveryTest, LostCommitRollsForwardViaRejoinDecisions) {
  a_->run([&](Runtime& rt) {
    dirty_both_homes(rt);
    drop_all(MessageType::kWbCommit);  // decision made, no commit lands
    auto ended = rt.end_session();
    ASSERT_FALSE(ended.is_ok());
  });
  fault_->disarm();
  // Crash before detection: B and C still consider A alive and keep the
  // acked stages in doubt.
  fault_->crash_space(kA);
  ASSERT_TRUE(world_->restart_space(kA).is_ok());

  // A's replayed decision log said COMMIT; both homes rolled forward.
  b_->run([](Runtime& rt) {
    EXPECT_EQ(rt.stats().in_doubt_resolved_commit, 1u);
    EXPECT_EQ(rt.stats().in_doubt_resolved_abort, 0u);
  });
  c_->run([](Runtime& rt) {
    EXPECT_EQ(rt.stats().in_doubt_resolved_commit, 1u);
  });
  expect_homes(kNewB, kNewC);
}

TEST_P(RecoveryTest, MidCommitCoordinatorCrashConvergesAfterDetection) {
  a_->run([&](Runtime& rt) {
    // Sequential fan-out so the ack drops land entirely on B: B applies
    // its commit (acks eaten), C never even sees phase two — the classic
    // half-committed crash point.
    rt.set_parallel_commit(false);
    dirty_both_homes(rt);
    fault_->drop_next(MessageType::kWbCommitAck, 3);
    auto ended = rt.end_session();
    ASSERT_FALSE(ended.is_ok());
  });
  // Crash after detection: the verdict runs its containment on B and C,
  // which must keep C's stage in doubt (dropping it would turn the logged
  // commit into silent data loss).
  world_->crash_space(kA);
  ASSERT_TRUE(world_->restart_space(kA).is_ok());

  c_->run([](Runtime& rt) {
    EXPECT_EQ(rt.stats().in_doubt_resolved_commit, 1u);
  });
  expect_homes(kNewB, kNewC);
}

TEST_P(RecoveryTest, UndecidedPreparePresumesAbort) {
  a_->run([&](Runtime& rt) {
    dirty_both_homes(rt);
    // Stages land on both homes but every ack is eaten: phase one fails
    // with nothing acked, so no decision is ever logged.
    drop_all(MessageType::kWbPrepareAck);
    auto ended = rt.end_session();
    ASSERT_FALSE(ended.is_ok());
  });
  fault_->disarm();
  world_->crash_space(kA);
  ASSERT_TRUE(world_->restart_space(kA).is_ok());

  // No decision in the REJOIN covers the stage: presumed abort.
  b_->run([](Runtime& rt) {
    EXPECT_EQ(rt.stats().in_doubt_resolved_abort, 1u);
    EXPECT_EQ(rt.stats().in_doubt_resolved_commit, 0u);
  });
  c_->run([](Runtime& rt) {
    EXPECT_EQ(rt.stats().in_doubt_resolved_abort, 1u);
  });
  expect_homes(kOldB, kOldC);
}

// --- incarnation fencing ----------------------------------------------------

TEST_P(RecoveryTest, StaleFramesFromPriorIncarnationAreFenced) {
  a_->run([&](Runtime& rt) {
    ASSERT_TRUE(rt.begin_session().is_ok());
    auto hb = typed_call<ListNode*>(rt, kB, "headB");
    ASSERT_TRUE(hb.is_ok()) << hb.status().to_string();
    // Hold every FETCH_REPLY in the decorator: B's first life answers, but
    // the answers stay parked on the wire across its death.
    FaultOptions opts;
    opts.delay = 1.0;
    opts.delay_window = 100000;
    fault_->target({MessageType::kFetchReply});
    fault_->arm(opts);
    auto fetched = rt.prefetch(hb.value(), 1 << 16);
    ASSERT_FALSE(fetched.is_ok());
    EXPECT_EQ(fetched.code(), StatusCode::kDeadlineExceeded);
  });
  world_->crash_space(kB);
  a_->run([](Runtime& rt) { ASSERT_TRUE(rt.abort_session().is_ok()); });
  ASSERT_TRUE(world_->restart_space(kB).is_ok());
  rebind_b();

  // Release the parked replies of incarnation 1 into a world that has
  // acknowledged incarnation 2: every one must be fenced, not misread as
  // an answer owed to the successor.
  const std::uint64_t fenced_before =
      a_->run([](Runtime& rt) { return rt.stats().fenced_stale_messages; });
  fault_->disarm();  // flush() delivers the held frames
  a_->run([&](Runtime& rt) {
    EXPECT_GT(rt.stats().fenced_stale_messages, fenced_before);
  });
  // The fenced stragglers poisoned nothing: normal traffic proceeds.
  expect_homes(kOldB, kOldC);
}

// --- checkpoint cadence -----------------------------------------------------

TEST_P(RecoveryTest, CheckpointCadenceBoundsReplay) {
  b_->run([](Runtime& rt) { rt.set_checkpoint_interval(1); });
  for (int round = 0; round < 2; ++round) {
    a_->run([&](Runtime& rt) {
      ASSERT_TRUE(rt.begin_session().is_ok());
      auto hb = typed_call<ListNode*>(rt, kB, "headB");
      ASSERT_TRUE(hb.is_ok()) << hb.status().to_string();
      ASSERT_TRUE(rt.prefetch(hb.value(), 1 << 16).is_ok());
      hb.value()->value = 1000 + round;
      ASSERT_TRUE(rt.end_session().is_ok());
    });
  }
  b_->run([](Runtime& rt) {
    EXPECT_GE(rt.stats().checkpoints_taken, 2u);  // one per settle
  });
  ASSERT_NE(world_->recovery_log(kB), nullptr);
  EXPECT_GE(world_->recovery_log(kB)->checkpoints(), 2u);
  const std::vector<std::uint8_t> never_crashed = heap_image(*b_);

  fault_->crash_space(kB);
  ASSERT_TRUE(world_->restart_space(kB).is_ok());
  rebind_b();
  EXPECT_EQ(heap_image(*b_), never_crashed);
  expect_homes(1001 + 11 + 12, kOldC);
}

// A checkpoint taken while a prepare is staged (in doubt) must not swallow
// the stage out of the replayable tail: the image captures the heap only,
// so the staged bytes are re-journaled after it and a later COMMIT replay
// still rolls forward. Without that, the replayed commit no-ops and a
// committed write-back is silently lost.
TEST_P(RecoveryTest, CheckpointDuringInDoubtStageKeepsLaterCommit) {
  a_->run([&](Runtime& rt) {
    dirty_both_homes(rt);
    drop_all(MessageType::kWbCommit);  // decision logged, commits lost
    auto ended = rt.end_session();
    ASSERT_FALSE(ended.is_ok());
  });
  fault_->disarm();
  // Checkpoint B while its stage is still in doubt.
  b_->run([](Runtime& rt) { rt.checkpoint_now(); });

  // The coordinator's replayed decision log rolls B's stage forward.
  fault_->crash_space(kA);
  ASSERT_TRUE(world_->restart_space(kA).is_ok());
  b_->run([](Runtime& rt) {
    EXPECT_EQ(rt.stats().in_doubt_resolved_commit, 1u);
  });
  const std::vector<std::uint8_t> committed = heap_image(*b_);

  // Now B itself dies: replay = mid-doubt checkpoint + re-journaled stage
  // + commit. The recovered heap must carry the committed bytes, not the
  // pre-write image the checkpoint alone would restore.
  fault_->crash_space(kB);
  ASSERT_TRUE(world_->restart_space(kB).is_ok());
  rebind_b();
  EXPECT_EQ(heap_image(*b_), committed);
  expect_homes(kNewB, kNewC);
}

// Frame reordering alone must not diverge the world: when a restarted
// space's ordinary traffic overtakes its REJOIN, the homes run the
// implicit (decision-less) cleanup — which must keep acked stages in
// doubt, and the delayed REJOIN, normally a dedup no-op, must still be
// consumed so its logged commit rolls them forward.
TEST_P(RecoveryTest, DelayedRejoinResolvesImplicitCleanupStages) {
  a_->run([&](Runtime& rt) {
    dirty_both_homes(rt);
    drop_all(MessageType::kWbCommit);  // decision logged, commits lost
    auto ended = rt.end_session();
    ASSERT_FALSE(ended.is_ok());
  });
  fault_->disarm();

  // Park every REJOIN on the wire: the announcement is delayed, not lost,
  // while the successor's ordinary traffic races ahead of it.
  FaultOptions opts;
  opts.delay = 1.0;
  opts.delay_window = 100000;
  fault_->target({MessageType::kRejoin});
  fault_->arm(opts);
  fault_->crash_space(kA);
  // Replay succeeds but the announcement cannot land inside its deadline.
  EXPECT_FALSE(world_->restart_space(kA).is_ok());

  // The failed announcement's probes already reached both homes stamped
  // with incarnation 2; drain the implicit cleanup at a safe point. With
  // no decision log in hand the stages must stay in doubt — presuming
  // abort here while a peer that got the REJOIN rolls forward would
  // diverge permanently.
  for (AddressSpace* home : {b_, c_}) {
    home->run([](Runtime& rt) {
      (void)rt.prefetch_many({}, 0);  // safe point: runs poll_failures
      EXPECT_GE(rt.stats().rejoins_served, 1u);
      EXPECT_EQ(rt.stats().in_doubt_resolved_commit, 0u);
      EXPECT_EQ(rt.stats().in_doubt_resolved_abort, 0u);
    });
  }
  // The successor is fully servable while the stages wait.
  expect_homes(kOldB, kOldC);

  // Release the parked REJOINs: the dedup lets the decision log through
  // (the incarnation itself is already known) and the stages roll forward
  // exactly as a timely announcement would have.
  fault_->disarm();
  b_->run([](Runtime& rt) {
    EXPECT_EQ(rt.stats().in_doubt_resolved_commit, 1u);
    EXPECT_EQ(rt.stats().in_doubt_resolved_abort, 0u);
  });
  c_->run([](Runtime& rt) {
    EXPECT_EQ(rt.stats().in_doubt_resolved_commit, 1u);
  });
  expect_homes(kNewB, kNewC);
}

INSTANTIATE_TEST_SUITE_P(ShipModes, RecoveryTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Delta" : "FullImage";
                         });

// Single-phase write-back (two_phase_writeback = false) has no
// PREPARE/COMMIT records; the home must journal it anyway, or a crash
// after the ack replays the heap back to the pre-write image.
TEST(RecoverySinglePhaseTest, AckedWritebackSurvivesHomeCrash) {
  WorldOptions options;
  options.cost = CostModel::zero();
  options.cache.closure_bytes = 0;
  options.fault_injection = true;
  options.timeouts = TimeoutConfig::aggressive();
  options.two_phase_writeback = false;
  options.recovery = true;
  World world(options);
  AddressSpace& a = world.create_space("A");
  AddressSpace& b = world.create_space("B");
  workload::register_list_type(world).status().check();

  ListNode* head = nullptr;
  b.run([&](Runtime& rt) {
    auto built = workload::build_list(rt, 3, [](std::uint32_t i) {
      return static_cast<std::int64_t>(10 + i);
    });
    built.status().check();
    head = built.value();
    rt.checkpoint_now();
  });
  auto bind = [&] {
    b.bind("headB", [&](CallContext&) -> ListNode* { return head; }).check();
    b.bind("sumB",
           [&](CallContext&) -> std::int64_t { return workload::sum_list(head); })
        .check();
  };
  bind();

  a.run([&](Runtime& rt) {
    ASSERT_TRUE(rt.begin_session().is_ok());
    auto hb = typed_call<ListNode*>(rt, b.id(), "headB");
    ASSERT_TRUE(hb.is_ok()) << hb.status().to_string();
    ASSERT_TRUE(rt.prefetch(hb.value(), 1 << 16).is_ok());
    hb.value()->value = 1000;
    ASSERT_TRUE(rt.end_session().is_ok());
  });
  const std::vector<std::uint8_t> never_crashed = b.run([](Runtime& rt) {
    RecoveryLog scratch;
    scratch.checkpoint(rt.heap());
    return scratch.snapshot().back().bytes;
  });

  world.fault()->crash_space(b.id());
  ASSERT_TRUE(world.restart_space(b.id()).is_ok());
  bind();
  const std::vector<std::uint8_t> recovered = b.run([](Runtime& rt) {
    RecoveryLog scratch;
    scratch.checkpoint(rt.heap());
    return scratch.snapshot().back().bytes;
  });
  EXPECT_EQ(recovered, never_crashed);
  a.run([&](Runtime& rt) {
    Session session(rt);
    auto sum = typed_call<std::int64_t>(rt, b.id(), "sumB");
    ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
    EXPECT_EQ(sum.value(), 1000 + 11 + 12);
    ASSERT_TRUE(session.end().is_ok());
  });
}

}  // namespace
}  // namespace srpc
