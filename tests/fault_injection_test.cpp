// Transport failure injection through the reusable net/fault_transport
// decorator: hard send failures must surface as Status at the initiating
// call site, and duplicated deliveries (replayed requests and replies) must
// be absorbed by request-id dedup — never served twice, never corrupting
// runtime state.
#include <gtest/gtest.h>

#include "core/smart_rpc.hpp"
#include "net/fault_transport.hpp"
#include "workload/list.hpp"

namespace srpc {
namespace {

using workload::ListNode;

// Zero-cost sim wire wrapped in the fault decorator; eager closure off so
// every remote datum travels through an explicit FETCH round trip (the
// interesting path for duplication).
WorldOptions faulty_world() {
  WorldOptions options;
  options.cost = CostModel::zero();
  options.cache.closure_bytes = 0;
  options.fault_injection = true;
  options.timeouts = TimeoutConfig::aggressive();
  return options;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest() : world_(faulty_world()) {
    a_ = &world_.create_space("A");
    b_ = &world_.create_space("B");
    workload::register_list_type(world_).status().check();
    b_->bind("sum",
             [](CallContext&, ListNode* head) -> std::int64_t {
               return workload::sum_list(head);
             })
        .check();
    b_->bind("head", [this](CallContext&) -> ListNode* { return remote_head_; })
        .check();
    // A three-node list homed at B for fetch-path tests.
    b_->run([&](Runtime& rt) {
      auto head = workload::build_list(rt, 3, [](std::uint32_t i) {
        return static_cast<std::int64_t>(10 + i);
      });
      head.status().check();
      remote_head_ = head.value();
    });
    fault_ = world_.fault();
  }

  ~FaultInjectionTest() override { fault_->disarm(); }

  World world_;
  AddressSpace* a_ = nullptr;
  AddressSpace* b_ = nullptr;
  FaultTransport* fault_ = nullptr;
  ListNode* remote_head_ = nullptr;
};

// --- whole-peer outage scenarios (partition / heal) -------------------------

TEST_F(FaultInjectionTest, PartitionedCallSurfacesDeadline) {
  a_->run([&](Runtime& rt) {
    fault_->partition(b_->id());  // silent two-way cut around B
    Session session(rt);
    auto sum = typed_call<std::int64_t>(rt, 1, "sum", static_cast<ListNode*>(nullptr));
    ASSERT_FALSE(sum.is_ok());
    // Loss is silent, so the failure surfaces through the retry layer.
    EXPECT_EQ(sum.status().code(), StatusCode::kDeadlineExceeded);
    fault_->heal_all();
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(FaultInjectionTest, RuntimeRecoversAfterPartitionHeals) {
  a_->run([&](Runtime& rt) {
    auto head = rt.heap().allocate(rt.host_types().find<ListNode>().value());
    head.status().check();
    static_cast<ListNode*>(head.value())->value = 21;

    {
      fault_->partition(b_->id());
      Session session(rt);
      auto sum = typed_call<std::int64_t>(rt, 1, "sum",
                                          static_cast<ListNode*>(head.value()));
      ASSERT_FALSE(sum.is_ok());
      EXPECT_EQ(sum.status().code(), StatusCode::kDeadlineExceeded);
      fault_->heal_all();
      ASSERT_TRUE(session.end().is_ok());
    }
    {
      Session session(rt);
      auto sum = typed_call<std::int64_t>(rt, 1, "sum",
                                          static_cast<ListNode*>(head.value()));
      ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
      EXPECT_EQ(sum.value(), 21);
      ASSERT_TRUE(session.end().is_ok());
    }
  });
}

TEST_F(FaultInjectionTest, SessionEndFailuresSurfaceToo) {
  a_->run([&](Runtime& rt) {
    auto head = rt.heap().allocate(rt.host_types().find<ListNode>().value());
    head.status().check();
    ASSERT_TRUE(rt.begin_session().is_ok());
    auto sum = typed_call<std::int64_t>(rt, 1, "sum",
                                        static_cast<ListNode*>(head.value()));
    ASSERT_TRUE(sum.is_ok());
    // Cut B away so the invalidation multicast at session end times out.
    fault_->partition(b_->id());
    auto ended = rt.end_session();
    ASSERT_FALSE(ended.is_ok());
    EXPECT_EQ(ended.code(), StatusCode::kDeadlineExceeded);
    fault_->heal_all();
    // A retried end succeeds once the partition heals.
    ASSERT_TRUE(rt.end_session().is_ok());
  });
}

// --- duplicate-delivery scenarios (request-id dedup) ------------------------

TEST_F(FaultInjectionTest, ReplayedFetchRepliesAreAbsorbed) {
  FaultOptions opts;
  opts.duplicate = 1.0;  // every fetch reply delivered twice
  fault_->target({MessageType::kFetchReply});
  fault_->arm(opts);

  a_->run([&](Runtime& rt) {
    Session session(rt);
    auto head = typed_call<ListNode*>(rt, 1, "head");
    ASSERT_TRUE(head.is_ok()) << head.status().to_string();
    // Walking the list faults node by node (closure budget is zero); every
    // FETCH_REPLY arrives twice and the twin must be dropped by seq
    // matching, not filled twice or misread as another reply.
    EXPECT_EQ(workload::sum_list(head.value()), 10 + 11 + 12);
    ASSERT_TRUE(session.end().is_ok());
  });
  fault_->disarm();

  const auto stats = a_->run([](Runtime& rt) { return rt.stats(); });
  EXPECT_GE(stats.stale_replies_absorbed, 3u);
  // The duplicates were injected at the wire, not invented by retransmits.
  EXPECT_GE(fault_->stats().duplicated, 3u);
}

TEST_F(FaultInjectionTest, DuplicatedCallsExecuteAtMostOnce) {
  FaultOptions opts;
  opts.duplicate = 1.0;
  fault_->target({MessageType::kCall});
  fault_->arm(opts);

  a_->run([&](Runtime& rt) {
    Session session(rt);
    auto sum = typed_call<std::int64_t>(rt, 1, "sum", static_cast<ListNode*>(nullptr));
    ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
    EXPECT_EQ(sum.value(), 0);
    ASSERT_TRUE(session.end().is_ok());
  });
  fault_->disarm();

  const auto stats = b_->run([](Runtime& rt) { return rt.stats(); });
  EXPECT_EQ(stats.calls_served, 1u);
  EXPECT_GE(stats.duplicate_requests_absorbed, 1u);
}

TEST_F(FaultInjectionTest, DuplicatedInvalidationsStayIdempotent) {
  FaultOptions opts;
  opts.duplicate = 1.0;
  fault_->target({MessageType::kInvalidate, MessageType::kInvalidateAck});
  fault_->arm(opts);

  a_->run([&](Runtime& rt) {
    Session session(rt);
    auto head = typed_call<ListNode*>(rt, 1, "head");
    ASSERT_TRUE(head.is_ok());
    ASSERT_TRUE(session.end().is_ok());
    // A second session right behind it proves the duplicated invalidate
    // did not wedge the peer.
    Session again(rt);
    auto sum = typed_call<std::int64_t>(rt, 1, "sum", static_cast<ListNode*>(nullptr));
    ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
    ASSERT_TRUE(again.end().is_ok());
  });
  fault_->disarm();
}

}  // namespace
}  // namespace srpc
