// Transport failure injection: send errors must surface as Status at the
// initiating call site, never hang or corrupt runtime state.
#include <gtest/gtest.h>

#include <atomic>

#include "core/smart_rpc.hpp"
#include "workload/list.hpp"

namespace srpc {
namespace {

using workload::ListNode;

// Wraps a transport and starts failing sends after a fuse burns down.
class FlakyTransport final : public Transport {
 public:
  explicit FlakyTransport(Transport& inner) : inner_(inner) {}

  Status send(Message msg) override {
    if (fuse_.load() >= 0 && sent_.fetch_add(1) >= fuse_.load()) {
      return unavailable("injected transport failure");
    }
    return inner_.send(std::move(msg));
  }

  void set_fuse(int messages) {
    sent_.store(0);
    fuse_.store(messages);
  }
  void disarm() { fuse_.store(-1); }

 private:
  Transport& inner_;
  std::atomic<int> sent_{0};
  std::atomic<int> fuse_{-1};
};

// A world wired through the flaky transport. Built by hand (World always
// wires spaces straight to its own transport).
class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest()
      : layouts_(registry_), net_(CostModel::zero()), flaky_(net_) {
    auto directory = [] { return std::vector<SpaceId>{0, 1}; };
    a_ = std::make_unique<AddressSpace>(0, "A", host_arch(), registry_, layouts_,
                                        host_types_, flaky_, &net_, CacheOptions{},
                                        directory);
    b_ = std::make_unique<AddressSpace>(1, "B", host_arch(), registry_, layouts_,
                                        host_types_, flaky_, &net_, CacheOptions{},
                                        directory);
    net_.attach(0, &a_->mailbox());
    net_.attach(1, &b_->mailbox());
    a_->start().check();
    b_->start().check();

    // Register the list type by hand (no World sugar here).
    auto node = registry_.declare_struct("FNode");
    node.status().check();
    node_ = node.value();
    registry_
        .define_struct(node_, {{"next", registry_.pointer_to(node_)},
                               {"value", TypeRegistry::scalar_id(ScalarType::kI64)}})
        .check();
    host_types_.bind<ListNode>(node_).check();

    b_->bind("sum",
             [](CallContext&, ListNode* head) -> std::int64_t {
               return workload::sum_list(head);
             })
        .check();
  }

  ~FaultInjectionTest() override {
    a_->shutdown();
    b_->shutdown();
  }

  TypeRegistry registry_;
  LayoutEngine layouts_;
  HostTypeMap host_types_;
  SimNetwork net_;
  FlakyTransport flaky_;
  std::unique_ptr<AddressSpace> a_;
  std::unique_ptr<AddressSpace> b_;
  TypeId node_ = kInvalidTypeId;
};

TEST_F(FaultInjectionTest, SendFailureOnCallSurfacesImmediately) {
  a_->run([&](Runtime& rt) {
    flaky_.set_fuse(0);  // every send fails
    Session session(rt);
    auto sum = typed_call<std::int64_t>(rt, 1, "sum", static_cast<ListNode*>(nullptr));
    ASSERT_FALSE(sum.is_ok());
    EXPECT_EQ(sum.status().code(), StatusCode::kUnavailable);
    flaky_.disarm();
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(FaultInjectionTest, RuntimeRecoversAfterTransportHeals) {
  a_->run([&](Runtime& rt) {
    auto head = rt.heap().allocate(node_);
    head.status().check();
    static_cast<ListNode*>(head.value())->value = 21;

    {
      flaky_.set_fuse(0);
      Session session(rt);
      auto sum = typed_call<std::int64_t>(rt, 1, "sum",
                                          static_cast<ListNode*>(head.value()));
      ASSERT_FALSE(sum.is_ok());
      flaky_.disarm();
      ASSERT_TRUE(session.end().is_ok());
    }
    {
      Session session(rt);
      auto sum = typed_call<std::int64_t>(rt, 1, "sum",
                                          static_cast<ListNode*>(head.value()));
      ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
      EXPECT_EQ(sum.value(), 21);
      ASSERT_TRUE(session.end().is_ok());
    }
  });
}

TEST_F(FaultInjectionTest, SessionEndFailuresSurfaceToo) {
  a_->run([&](Runtime& rt) {
    auto head = rt.heap().allocate(node_);
    head.status().check();
    ASSERT_TRUE(rt.begin_session().is_ok());
    auto sum = typed_call<std::int64_t>(rt, 1, "sum",
                                        static_cast<ListNode*>(head.value()));
    ASSERT_TRUE(sum.is_ok());
    // Fail the invalidation multicast at session end.
    flaky_.set_fuse(0);
    auto ended = rt.end_session();
    ASSERT_FALSE(ended.is_ok());
    EXPECT_EQ(ended.code(), StatusCode::kUnavailable);
    flaky_.disarm();
    // A retried end succeeds once the transport heals.
    ASSERT_TRUE(rt.end_session().is_ok());
  });
}

}  // namespace
}  // namespace srpc
