// ClosurePacker unit tests: bounded breadth-first closure over a mock view.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "core/closure.hpp"
#include "types/type_registry.hpp"

namespace srpc {
namespace {

struct Node {
  Node* left;
  Node* right;
  std::int64_t data;
};

// A mock local view: fake addresses map to typed images; some are marked
// unreadable (non-resident cache).
class MockView final : public LocalDataView {
 public:
  struct Datum {
    LongPointer id;
    const void* image;
    bool readable;
  };

  void put(std::uint64_t addr, Datum d) { data_[addr] = d; }

  Result<DatumView> view_local(std::uint64_t addr) const override {
    auto it = data_.find(addr);
    if (it == data_.end()) return not_found("unknown address");
    DatumView view;
    view.id = it->second.id;
    view.image = it->second.readable ? it->second.image : nullptr;
    return view;
  }

 private:
  std::map<std::uint64_t, Datum> data_;
};

class ClosureTest : public ::testing::Test {
 protected:
  ClosureTest() : layouts_(registry_), codec_{registry_, layouts_} {
    auto node = registry_.declare_struct("ClNode");
    node.status().check();
    node_ = node.value();
    const TypeId ptr = registry_.pointer_to(node_);
    registry_
        .define_struct(node_, {{"left", ptr},
                               {"right", ptr},
                               {"data", TypeRegistry::scalar_id(ScalarType::kI64)}})
        .check();
  }

  // Builds a complete tree of `n` nodes in `nodes_` and registers each with
  // the view at its own (real) address, homed at `home`.
  Node* build_tree(std::uint32_t n, SpaceId home) {
    nodes_.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      nodes_[i] = Node{nullptr, nullptr, static_cast<std::int64_t>(i)};
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      if (2 * i + 1 < n) nodes_[i].left = &nodes_[2 * i + 1];
      if (2 * i + 2 < n) nodes_[i].right = &nodes_[2 * i + 2];
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto addr = reinterpret_cast<std::uint64_t>(&nodes_[i]);
      view_.put(addr, {{home, addr, node_}, &nodes_[i], true});
    }
    return &nodes_[0];
  }

  std::uint64_t addr_of(const Node* n) const {
    return reinterpret_cast<std::uint64_t>(n);
  }

  TypeRegistry registry_;
  LayoutEngine layouts_;
  ValueCodec codec_;
  MockView view_;
  std::vector<Node> nodes_;
  TypeId node_ = kInvalidTypeId;
};

TEST_F(ClosureTest, WalkPointerFieldsFindsEveryPointer) {
  Node leaf{nullptr, nullptr, 3};
  Node root{&leaf, nullptr, 1};
  std::vector<std::pair<std::uint64_t, TypeId>> seen;
  ASSERT_TRUE(walk_pointer_fields(registry_, layouts_, host_arch(), node_, &root,
                                  [&](std::uint64_t p, TypeId t) -> Status {
                                    seen.emplace_back(p, t);
                                    return Status::ok();
                                  })
                  .is_ok());
  ASSERT_EQ(seen.size(), 1u);  // null right pointer not reported
  EXPECT_EQ(seen[0].first, reinterpret_cast<std::uint64_t>(&leaf));
  EXPECT_EQ(seen[0].second, node_);
}

TEST_F(ClosureTest, ZeroBudgetPacksNothingWithoutRequireRoots) {
  Node* root = build_tree(7, 1);
  ClosurePacker packer(codec_, host_arch(), view_);
  const std::uint64_t roots[] = {addr_of(root)};
  auto packed = packer.pack(roots, 0, /*require_roots=*/false);
  ASSERT_TRUE(packed.is_ok());
  EXPECT_EQ(packed.value().objects, 0u);
}

TEST_F(ClosureTest, RequireRootsForcesRootsPastBudget) {
  Node* root = build_tree(7, 1);
  ClosurePacker packer(codec_, host_arch(), view_);
  const std::uint64_t roots[] = {addr_of(root)};
  auto packed = packer.pack(roots, 0, /*require_roots=*/true);
  ASSERT_TRUE(packed.is_ok());
  EXPECT_EQ(packed.value().objects, 1u);
}

TEST_F(ClosureTest, BudgetBoundsTheTraversal) {
  Node* root = build_tree(127, 1);
  ClosurePacker packer(codec_, host_arch(), view_);
  const std::uint64_t roots[] = {addr_of(root)};
  const std::uint64_t per_node = graph_object_wire_size(codec_, node_).value();
  auto packed = packer.pack(roots, per_node * 10, false);
  ASSERT_TRUE(packed.is_ok());
  EXPECT_EQ(packed.value().objects, 10u);
  EXPECT_LE(packed.value().estimated_wire_bytes, per_node * 10);
}

TEST_F(ClosureTest, BreadthFirstTakesLevelsBeforeDepth) {
  Node* root = build_tree(15, 1);
  ClosurePacker packer(codec_, host_arch(), view_, TraversalOrder::kBreadthFirst);
  const std::uint64_t roots[] = {addr_of(root)};
  const std::uint64_t per_node = graph_object_wire_size(codec_, node_).value();
  auto packed = packer.pack(roots, per_node * 7, false);
  ASSERT_TRUE(packed.is_ok());
  // BFS over a complete tree: the first 7 packed nodes are exactly the top
  // three levels (indices 0..6).
  const auto& refs = packed.value().groups.at(1);
  ASSERT_EQ(refs.size(), 7u);
  for (const auto& ref : refs) {
    const auto* n = static_cast<const Node*>(ref.src);
    EXPECT_LT(n->data, 7);
  }
}

TEST_F(ClosureTest, DepthFirstDivesDownOneSpine) {
  Node* root = build_tree(15, 1);
  ClosurePacker packer(codec_, host_arch(), view_, TraversalOrder::kDepthFirst);
  const std::uint64_t roots[] = {addr_of(root)};
  const std::uint64_t per_node = graph_object_wire_size(codec_, node_).value();
  auto packed = packer.pack(roots, per_node * 4, false);
  ASSERT_TRUE(packed.is_ok());
  const auto& refs = packed.value().groups.at(1);
  ASSERT_EQ(refs.size(), 4u);
  // Depth-first from the root reaches depth 3 within four nodes; BFS could
  // only reach depth 1. Check the last packed node is at depth 3 (data >= 7).
  const auto* last = static_cast<const Node*>(refs.back().src);
  EXPECT_GE(last->data, 7);
}

TEST_F(ClosureTest, SharedNodesPackOnce) {
  // A diamond: root -> {a, b} -> shared.
  Node shared{nullptr, nullptr, 99};
  Node a{&shared, nullptr, 1};
  Node b{&shared, nullptr, 2};
  Node root{&a, &b, 0};
  for (Node* n : {&root, &a, &b, &shared}) {
    const auto addr = reinterpret_cast<std::uint64_t>(n);
    view_.put(addr, {{1, addr, node_}, n, true});
  }
  ClosurePacker packer(codec_, host_arch(), view_);
  const std::uint64_t roots[] = {reinterpret_cast<std::uint64_t>(&root)};
  auto packed = packer.pack(roots, 1 << 20, false);
  ASSERT_TRUE(packed.is_ok());
  EXPECT_EQ(packed.value().objects, 4u);  // not 5
}

TEST_F(ClosureTest, CyclesTerminate) {
  Node a{nullptr, nullptr, 1};
  Node b{&a, nullptr, 2};
  a.left = &b;
  a.right = &a;  // self loop
  for (Node* n : {&a, &b}) {
    const auto addr = reinterpret_cast<std::uint64_t>(n);
    view_.put(addr, {{1, addr, node_}, n, true});
  }
  ClosurePacker packer(codec_, host_arch(), view_);
  const std::uint64_t roots[] = {reinterpret_cast<std::uint64_t>(&a)};
  auto packed = packer.pack(roots, 1 << 20, false);
  ASSERT_TRUE(packed.is_ok());
  EXPECT_EQ(packed.value().objects, 2u);
}

TEST_F(ClosureTest, UnreadableChildrenStayFrontier) {
  Node* root = build_tree(7, 1);
  // Mark the left subtree unreadable (swizzled but unfetched).
  const auto left_addr = addr_of(root->left);
  view_.put(left_addr, {{1, left_addr, node_}, root->left, false});

  ClosurePacker packer(codec_, host_arch(), view_);
  const std::uint64_t roots[] = {addr_of(root)};
  auto packed = packer.pack(roots, 1 << 20, false);
  ASSERT_TRUE(packed.is_ok());
  // Root + right subtree (3 nodes) only: 4 packed. The unreadable left
  // child AND its children (unreachable through it) stay behind.
  EXPECT_EQ(packed.value().objects, 4u);
}

TEST_F(ClosureTest, GroupsSplitByHomeSpace) {
  // root homed at 1 points to a child homed at 2.
  Node child{nullptr, nullptr, 7};
  Node root{&child, nullptr, 0};
  view_.put(reinterpret_cast<std::uint64_t>(&root),
            {{1, reinterpret_cast<std::uint64_t>(&root), node_}, &root, true});
  view_.put(reinterpret_cast<std::uint64_t>(&child),
            {{2, reinterpret_cast<std::uint64_t>(&child), node_}, &child, true});
  ClosurePacker packer(codec_, host_arch(), view_);
  const std::uint64_t roots[] = {reinterpret_cast<std::uint64_t>(&root)};
  auto packed = packer.pack(roots, 1 << 20, false);
  ASSERT_TRUE(packed.is_ok());
  EXPECT_EQ(packed.value().groups.size(), 2u);
  EXPECT_EQ(packed.value().groups.at(1).size(), 1u);
  EXPECT_EQ(packed.value().groups.at(2).size(), 1u);
}

TEST_F(ClosureTest, UnknownRootFailsOnlyWhenRequired) {
  ClosurePacker packer(codec_, host_arch(), view_);
  const std::uint64_t roots[] = {0xDEAD};
  auto lax = packer.pack(roots, 100, /*require_roots=*/false);
  ASSERT_TRUE(lax.is_ok());
  EXPECT_EQ(lax.value().objects, 0u);
  auto strict = packer.pack(roots, 100, /*require_roots=*/true);
  ASSERT_FALSE(strict.is_ok());
}

}  // namespace
}  // namespace srpc
