// Managed heap: typed allocation, interval lookup, adoption, array interning.
#include <gtest/gtest.h>

#include "mem/managed_heap.hpp"
#include "types/type_registry.hpp"

namespace srpc {
namespace {

class ManagedHeapTest : public ::testing::Test {
 protected:
  ManagedHeapTest() : layouts_(registry_), heap_(registry_, layouts_, host_arch(), 1) {
    auto node = registry_.declare_struct("HNode");
    node.status().check();
    node_ = node.value();
    registry_
        .define_struct(node_, {{"next", registry_.pointer_to(node_)},
                               {"value", TypeRegistry::scalar_id(ScalarType::kI64)}})
        .check();
  }

  TypeRegistry registry_;
  LayoutEngine layouts_;
  ManagedHeap heap_;
  TypeId node_ = kInvalidTypeId;
};

TEST_F(ManagedHeapTest, AllocateZeroesAndRecords) {
  auto mem = heap_.allocate(node_);
  ASSERT_TRUE(mem.is_ok());
  auto* bytes = static_cast<std::uint8_t*>(mem.value());
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(bytes[i], 0);

  const ManagedHeap::Record* record = heap_.find(mem.value());
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->type, node_);
  EXPECT_EQ(record->size, layouts_.size_of(host_arch(), node_));
  EXPECT_EQ(heap_.live_allocations(), 1u);
}

TEST_F(ManagedHeapTest, InteriorLookupAndBounds) {
  auto mem = heap_.allocate(node_);
  ASSERT_TRUE(mem.is_ok());
  auto* base = static_cast<std::uint8_t*>(mem.value());
  EXPECT_EQ(heap_.find(base + 8), heap_.find(base));
  EXPECT_EQ(heap_.find_base(reinterpret_cast<std::uint64_t>(base)), heap_.find(base));
  EXPECT_EQ(heap_.find_base(reinterpret_cast<std::uint64_t>(base) + 1), nullptr);
}

TEST_F(ManagedHeapTest, ArrayAllocationsInternArrayType) {
  auto mem = heap_.allocate(TypeRegistry::scalar_id(ScalarType::kI64), 10);
  ASSERT_TRUE(mem.is_ok());
  const ManagedHeap::Record* record = heap_.find(mem.value());
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->count, 10u);
  EXPECT_EQ(record->size, 80u);
  const TypeDescriptor& desc = registry_.get(record->type);
  EXPECT_EQ(desc.kind(), TypeKind::kArray);
  EXPECT_EQ(desc.count(), 10u);
}

TEST_F(ManagedHeapTest, FreeRemovesAndRejectsNonBase) {
  auto mem = heap_.allocate(node_);
  ASSERT_TRUE(mem.is_ok());
  auto* base = static_cast<std::uint8_t*>(mem.value());
  EXPECT_EQ(heap_.free(base + 4).code(), StatusCode::kNotFound);
  ASSERT_TRUE(heap_.free(base).is_ok());
  EXPECT_EQ(heap_.live_allocations(), 0u);
  EXPECT_EQ(heap_.live_bytes(), 0u);
  EXPECT_EQ(heap_.free(base).code(), StatusCode::kNotFound);  // double free
}

TEST_F(ManagedHeapTest, AdoptRegistersExternalMemory) {
  alignas(16) std::uint8_t external[64];
  ASSERT_TRUE(heap_.adopt(external, node_, 1).is_ok());
  EXPECT_TRUE(heap_.contains(external));
  EXPECT_TRUE(heap_.contains(external + 8));
  // Overlapping adoption rejected.
  EXPECT_EQ(heap_.adopt(external + 8, node_, 1).code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(heap_.free(external).is_ok());
  EXPECT_FALSE(heap_.contains(external));
}

TEST_F(ManagedHeapTest, LiveBytesAccounting) {
  const std::uint64_t node_size = layouts_.size_of(host_arch(), node_);
  auto a = heap_.allocate(node_);
  auto b = heap_.allocate(node_);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(heap_.live_bytes(), 2 * node_size);
  ASSERT_TRUE(heap_.free(a.value()).is_ok());
  EXPECT_EQ(heap_.live_bytes(), node_size);
}

TEST_F(ManagedHeapTest, RejectsZeroCount) {
  auto mem = heap_.allocate(node_, 0);
  ASSERT_FALSE(mem.is_ok());
  EXPECT_EQ(mem.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace srpc
