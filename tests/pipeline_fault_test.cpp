// Multiplexing torture: many outstanding sequence numbers while the wire
// drops, duplicates, and reorders traffic.
//
// The invariants under test: every reply lands in its own completion slot
// (never a neighbour's), a retransmitting seq does not stall the seqs that
// are completing around it, a partition or crash mid-fan-out degrades to a
// typed bounded failure with the surviving homes mutually consistent, and
// the retried session end rolls the protocol forward to convergence. A
// seeded chaos sweep (drop+duplicate+delay at once) closes the file; the
// seed base is overridable via SRPC_SOAK_SEED_BASE for scripts/soak.sh.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/smart_rpc.hpp"
#include "net/fault_transport.hpp"
#include "workload/list.hpp"

namespace srpc {
namespace {

using workload::ListNode;
using Clock = std::chrono::steady_clock;

constexpr auto kBound = std::chrono::seconds(5);

constexpr std::int64_t kOldB = 10 + 11 + 12;
constexpr std::int64_t kOldC = 20 + 21 + 22;
constexpr std::int64_t kOldD = 30 + 31 + 32;
constexpr std::int64_t kNewB = 1000 + 11 + 12;
constexpr std::int64_t kNewC = 2000 + 21 + 22;
constexpr std::int64_t kNewD = 3000 + 31 + 32;

std::uint64_t seed_base() {
  if (const char* env = std::getenv("SRPC_SOAK_SEED_BASE")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 0xF00DULL;
}

// Ground A pipelines against three homes (B=1, C=2, D=3), the smallest
// world where a fan-out can half-fail.
class PipelineFaultTest : public ::testing::Test {
 protected:
  PipelineFaultTest() {
    WorldOptions options;
    options.cost = CostModel::zero();
    options.cache.closure_bytes = 0;
    options.fault_injection = true;
    options.timeouts = TimeoutConfig::aggressive();
    world_ = std::make_unique<World>(options);
    a_ = &world_->create_space("A");
    b_ = &world_->create_space("B");
    c_ = &world_->create_space("C");
    d_ = &world_->create_space("D");
    workload::register_list_type(*world_).status().check();
    bind_home(*b_, "B", &head_b_);
    bind_home(*c_, "C", &head_c_);
    bind_home(*d_, "D", &head_d_);
    b_->bind("echo",
             [](CallContext&, std::int64_t v) -> std::int64_t { return v; })
        .check();
    c_->bind("negate",
             [](CallContext&, std::int64_t v) -> std::int64_t { return -v; })
        .check();
    build(*b_, &head_b_, 10);
    build(*c_, &head_c_, 20);
    build(*d_, &head_d_, 30);
    fault_ = world_->fault();
  }

  ~PipelineFaultTest() override {
    if (fault_ != nullptr) fault_->disarm();
  }

  static void bind_home(AddressSpace& space, const std::string& tag,
                        ListNode** head) {
    space.bind("head" + tag, [head](CallContext&) -> ListNode* { return *head; })
        .check();
    space
        .bind("sum" + tag,
              [head](CallContext&) -> std::int64_t {
                return workload::sum_list(*head);
              })
        .check();
  }

  static void build(AddressSpace& space, ListNode** head, std::int64_t base) {
    space.run([&](Runtime& rt) {
      auto built = workload::build_list(rt, 3, [base](std::uint32_t i) {
        return base + static_cast<std::int64_t>(i);
      });
      built.status().check();
      *head = built.value();
    });
  }

  // Fetches the three heads into A's cache via remote calls; the pointers
  // come back swizzled but non-resident, ready for a batched prefetch.
  struct Heads {
    ListNode* b = nullptr;
    ListNode* c = nullptr;
    ListNode* d = nullptr;
  };
  static Heads fetch_heads(Runtime& rt) {
    Heads heads;
    auto hb = typed_call<ListNode*>(rt, 1, "headB");
    EXPECT_TRUE(hb.is_ok()) << hb.status().to_string();
    auto hc = typed_call<ListNode*>(rt, 2, "headC");
    EXPECT_TRUE(hc.is_ok()) << hc.status().to_string();
    auto hd = typed_call<ListNode*>(rt, 3, "headD");
    EXPECT_TRUE(hd.is_ok()) << hd.status().to_string();
    heads.b = hb.value();
    heads.c = hc.value();
    heads.d = hd.value();
    return heads;
  }

  static Status prefetch_all(Runtime& rt, const Heads& heads) {
    std::vector<const void*> roots{heads.b, heads.c, heads.d};
    return rt.prefetch_many(roots, 1 << 16);
  }

  // Reads every home through a fresh session and asserts the all-or-nothing
  // invariant across the given homes (mixed outcome = atomicity violation).
  void expect_consistent(std::vector<SpaceId> homes) {
    a_->run([&](Runtime& rt) {
      Session session(rt);
      std::vector<bool> committed;
      for (SpaceId home : homes) {
        const char* proc = home == 1 ? "sumB" : home == 2 ? "sumC" : "sumD";
        const std::int64_t old_sum = home == 1 ? kOldB : home == 2 ? kOldC : kOldD;
        const std::int64_t new_sum = home == 1 ? kNewB : home == 2 ? kNewC : kNewD;
        auto sum = session.call<std::int64_t>(home, proc);
        ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
        ASSERT_TRUE(sum.value() == old_sum || sum.value() == new_sum)
            << "home " << home << " holds torn bytes: " << sum.value();
        committed.push_back(sum.value() == new_sum);
      }
      for (std::size_t i = 1; i < committed.size(); ++i) {
        EXPECT_EQ(committed[0], committed[i])
            << "half-committed fan-out across homes " << homes[0] << " and "
            << homes[i];
      }
      ASSERT_TRUE(session.end().is_ok());
    });
  }

  std::unique_ptr<World> world_;
  AddressSpace* a_ = nullptr;
  AddressSpace* b_ = nullptr;
  AddressSpace* c_ = nullptr;
  AddressSpace* d_ = nullptr;
  FaultTransport* fault_ = nullptr;
  ListNode* head_b_ = nullptr;
  ListNode* head_c_ = nullptr;
  ListNode* head_d_ = nullptr;
};

// Eight-plus outstanding CALL seqs while every reply is duplicated and most
// are shuffled behind younger traffic: each future must still observe
// exactly its own reply, and the duplicates must be absorbed as stale
// rather than completing (or wedging) anything.
TEST_F(PipelineFaultTest, OutstandingCallsSurviveDuplicatedReorderedReplies) {
  FaultOptions opts;
  opts.seed = seed_base();
  opts.duplicate = 1.0;
  opts.delay = 0.6;
  opts.delay_window = 3;
  fault_->target({MessageType::kReturn});
  fault_->arm(opts);
  a_->run([&](Runtime& rt) {
    // Generous per-request deadlines: the delayed replies are released by
    // flush() nudges below, and a sanitizer-slowed run must not let the
    // CALL slots expire underneath the shuffle.
    rt.set_timeouts(TimeoutConfig{});
    Session session(rt);
    std::vector<TypedCallFuture<std::int64_t>> futures;
    for (std::int64_t i = 0; i < 10; ++i) {
      auto fut = (i % 2) == 0
                     ? session.call_async<std::int64_t>(1, "echo", i)
                     : session.call_async<std::int64_t>(2, "negate", i);
      ASSERT_TRUE(fut.is_ok()) << fut.status().to_string();
      futures.push_back(std::move(fut.value()));
    }
    EXPECT_GE(rt.endpoint().inflight(), 8u);
    // A held-back reply is only released by later wire traffic; once the
    // pipeline drains there may be none, so nudge with flush() whenever a
    // wait times out (the future stays valid across a deadline).
    const auto watchdog = Clock::now() + kBound;
    for (std::int64_t i = 0; i < 10; ++i) {
      Result<std::int64_t> out = deadline_exceeded("unattempted");
      while (true) {
        out = futures[static_cast<std::size_t>(i)].get(
            Clock::now() + std::chrono::milliseconds(50));
        if (out.is_ok() ||
            out.status().code() != StatusCode::kDeadlineExceeded ||
            Clock::now() >= watchdog) {
          break;
        }
        fault_->flush();
      }
      ASSERT_TRUE(out.is_ok()) << out.status().to_string();
      EXPECT_EQ(out.value(), (i % 2) == 0 ? i : -i);
    }
    EXPECT_EQ(rt.endpoint().inflight(), 0u);
    fault_->disarm();  // releases any still-held duplicates
    // One settling roundtrip pumps the mailbox through the full dispatcher,
    // so every straggler duplicate is absorbed before we assert on it.
    auto settle = session.call<std::int64_t>(1, "echo", std::int64_t{99});
    ASSERT_TRUE(settle.is_ok()) << settle.status().to_string();
    ASSERT_TRUE(session.end().is_ok());
    // Every duplicate RETURN missed its (finished) slot and was absorbed.
    EXPECT_GE(rt.stats().stale_replies_absorbed, 1u);
  });
}

// One FETCH reply of a three-home fan-out is lost: that seq must
// retransmit (FETCH is idempotent) while the other homes' replies complete
// their slots, and the batch still fills every page.
TEST_F(PipelineFaultTest, DroppedFetchReplyRetransmitsWhileOthersComplete) {
  a_->run([&](Runtime& rt) {
    Session session(rt);
    Heads heads = fetch_heads(rt);
    const std::uint64_t before = rt.endpoint().retransmits();
    fault_->drop_next(MessageType::kFetchReply, 1);
    ASSERT_TRUE(prefetch_all(rt, heads).is_ok());
    EXPECT_GE(rt.endpoint().retransmits(), before + 1);
    EXPECT_EQ(workload::sum_list(heads.b), kOldB);
    EXPECT_EQ(workload::sum_list(heads.c), kOldC);
    EXPECT_EQ(workload::sum_list(heads.d), kOldD);
    EXPECT_EQ(rt.endpoint().inflight(), 0u);
    ASSERT_TRUE(session.end().is_ok());
  });
}

// A home partitioned mid-fan-out fails the batch typed and bounded; the
// healed wire retries to success with every list intact.
TEST_F(PipelineFaultTest, PartitionMidFanoutHealsAndRetries) {
  a_->run([&](Runtime& rt) {
    Session session(rt);
    Heads heads = fetch_heads(rt);
    fault_->partition(3);
    const auto start = Clock::now();
    Status batched = prefetch_all(rt, heads);
    ASSERT_FALSE(batched.is_ok());
    EXPECT_LT(Clock::now() - start, kBound);
    EXPECT_EQ(rt.endpoint().inflight(), 0u);
    fault_->heal_all();
    ASSERT_TRUE(prefetch_all(rt, heads).is_ok());
    EXPECT_EQ(workload::sum_list(heads.b), kOldB);
    EXPECT_EQ(workload::sum_list(heads.c), kOldC);
    EXPECT_EQ(workload::sum_list(heads.d), kOldD);
    ASSERT_TRUE(session.end().is_ok());
  });
}

// One home unreachable during the parallel WB_PREPARE fan-out: phase one
// fails, the prepared survivors are rolled back (all-or-nothing), and the
// retried end after healing rolls the whole session forward.
TEST_F(PipelineFaultTest, PartitionDuringParallelPrepareRollsForward) {
  a_->run([&](Runtime& rt) {
    ASSERT_TRUE(rt.parallel_commit());
    ASSERT_TRUE(rt.begin_session().is_ok());
    Heads heads = fetch_heads(rt);
    ASSERT_TRUE(prefetch_all(rt, heads).is_ok());
    heads.b->value = 1000;
    heads.c->value = 2000;
    heads.d->value = 3000;
    fault_->partition(2);
    const auto start = Clock::now();
    auto ended = rt.end_session();
    ASSERT_FALSE(ended.is_ok());
    EXPECT_LT(Clock::now() - start, kBound);
    EXPECT_GE(rt.stats().wb_aborts, 1u);
    fault_->heal_all();
    ASSERT_TRUE(rt.end_session().is_ok());
    EXPECT_EQ(rt.active_sessions(), 0u);
  });
  expect_consistent({1, 2, 3});
  a_->run([&](Runtime& rt) {
    Session session(rt);
    auto sum = session.call<std::int64_t>(2, "sumC");
    ASSERT_TRUE(sum.is_ok());
    EXPECT_EQ(sum.value(), kNewC);  // converged, not merely consistent
    ASSERT_TRUE(session.end().is_ok());
  });
}

// A home's process dies during the parallel prepare fan-out. The end fails
// fast and bounded, the abort unwinds past the corpse, and the surviving
// homes stay byte-identical to each other (both old or both new — never
// torn).
TEST_F(PipelineFaultTest, CrashDuringParallelPrepareKeepsSurvivorsConsistent) {
  a_->run([&](Runtime& rt) {
    ASSERT_TRUE(rt.begin_session().is_ok());
    Heads heads = fetch_heads(rt);
    ASSERT_TRUE(prefetch_all(rt, heads).is_ok());
    heads.b->value = 1000;
    heads.c->value = 2000;
    heads.d->value = 3000;
  });
  world_->crash_space(3);
  a_->run([&](Runtime& rt) {
    const auto start = Clock::now();
    Status ended = rt.end_session();
    EXPECT_LT(Clock::now() - start, kBound);
    if (!ended.is_ok()) {
      // Dead peer blocked the commit: abort must still unwind locally.
      Status aborted = rt.abort_session();
      EXPECT_LT(Clock::now() - start, 2 * kBound);
      (void)aborted;  // dead peer may be reported; local unwind is what matters
    }
    EXPECT_EQ(rt.active_sessions(), 0u);
  });
  expect_consistent({1, 2});
}

// Seeded chaos sweep: drop + duplicate + delay all at once on the fetch
// path, across several seeds. Every batch must either succeed under fire
// (retransmits absorb the losses) or fail typed and succeed on a calm
// retry; each cycle must end with no leaked sessions or completion slots.
TEST_F(PipelineFaultTest, SeededChaosSweepConverges) {
  const std::uint64_t base = seed_base();
  for (std::uint64_t seed = base; seed < base + 5; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    FaultOptions opts;
    opts.seed = seed;
    opts.drop = 0.25;
    opts.duplicate = 0.25;
    opts.delay = 0.25;
    opts.delay_window = 3;
    a_->run([&](Runtime& rt) {
      ASSERT_TRUE(rt.begin_session().is_ok());
      Heads heads = fetch_heads(rt);
      fault_->target({MessageType::kFetch, MessageType::kFetchReply});
      fault_->arm(opts);
      Status batched = prefetch_all(rt, heads);
      fault_->disarm();  // also flushes held-back messages
      if (!batched.is_ok()) {
        // Loss outran the retry budget for this seed; the calm wire must
        // converge on the first retry.
        ASSERT_TRUE(prefetch_all(rt, heads).is_ok())
            << "batch did not converge after " << batched.to_string();
      }
      EXPECT_EQ(workload::sum_list(heads.b), kOldB);
      EXPECT_EQ(workload::sum_list(heads.c), kOldC);
      EXPECT_EQ(workload::sum_list(heads.d), kOldD);
      EXPECT_EQ(rt.endpoint().inflight(), 0u);
      ASSERT_TRUE(rt.end_session().is_ok());
      EXPECT_EQ(rt.active_sessions(), 0u);
    });
  }
}

}  // namespace
}  // namespace srpc
