// Workload generators: deterministic shapes, sums, and patterns (these
// feed the benches, so their invariants underwrite the figures).
#include <gtest/gtest.h>

#include "core/smart_rpc.hpp"
#include "workload/access_pattern.hpp"
#include "workload/graph.hpp"
#include "workload/list.hpp"
#include "workload/tree.hpp"

namespace srpc {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() : world_([] {
          WorldOptions options;
          options.cost = CostModel::zero();
          return options;
        }()) {
    space_ = &world_.create_space("home");
    workload::register_tree_type(world_).status().check();
    workload::register_list_type(world_).status().check();
    workload::register_graph_type(world_).status().check();
  }

  World world_;
  AddressSpace* space_ = nullptr;
};

TEST_F(WorkloadTest, CompleteTreeShape) {
  space_->run([&](Runtime& rt) {
    auto root = workload::build_complete_tree(rt, 15);
    root.status().check();
    // Level-order data values; node i's children are 2i+1 / 2i+2.
    EXPECT_EQ(root.value()->data, 0);
    EXPECT_EQ(root.value()->left->data, 1);
    EXPECT_EQ(root.value()->right->data, 2);
    EXPECT_EQ(root.value()->left->left->data, 3);
    // Leaves have no children.
    EXPECT_EQ(root.value()->left->left->left->left, nullptr);
    EXPECT_EQ(rt.heap().live_allocations(), 15u);
    workload::free_tree(rt, root.value()).check();
    EXPECT_EQ(rt.heap().live_allocations(), 0u);
  });
}

TEST_F(WorkloadTest, VisitPrefixIsDepthFirstPreOrder) {
  space_->run([&](Runtime& rt) {
    auto root = workload::build_complete_tree(rt, 7);
    root.status().check();
    // Pre-order over the level-ordered tree: 0,1,3,4,2,5,6.
    EXPECT_EQ(workload::visit_prefix(root.value(), 1), 0);
    EXPECT_EQ(workload::visit_prefix(root.value(), 2), 0 + 1);
    EXPECT_EQ(workload::visit_prefix(root.value(), 3), 0 + 1 + 3);
    EXPECT_EQ(workload::visit_prefix(root.value(), 5), 0 + 1 + 3 + 4 + 2);
    EXPECT_EQ(workload::visit_prefix(root.value(), 100), 21);
    EXPECT_EQ(workload::visit_prefix(nullptr, 10), 0);
    workload::free_tree(rt, root.value()).check();
  });
}

TEST_F(WorkloadTest, UpdatePrefixTouchesTheSameNodesAsVisit) {
  space_->run([&](Runtime& rt) {
    auto a = workload::build_complete_tree(rt, 31);
    auto b = workload::build_complete_tree(rt, 31);
    a.status().check();
    b.status().check();
    const std::int64_t visited = workload::visit_prefix(a.value(), 12);
    const std::int64_t updated = workload::update_prefix(b.value(), 12, 1);
    EXPECT_EQ(updated, visited + 12);  // each visited node bumped by one
    workload::free_tree(rt, a.value()).check();
    workload::free_tree(rt, b.value()).check();
  });
}

TEST_F(WorkloadTest, RandomPathsAreSeedDeterministic) {
  space_->run([&](Runtime& rt) {
    auto root = workload::build_complete_tree(rt, 63);
    root.status().check();
    const std::int64_t first = workload::walk_random_paths(root.value(), 5, 42);
    const std::int64_t second = workload::walk_random_paths(root.value(), 5, 42);
    const std::int64_t other = workload::walk_random_paths(root.value(), 5, 43);
    EXPECT_EQ(first, second);
    EXPECT_NE(first, other);  // overwhelmingly likely for this tree
    workload::free_tree(rt, root.value()).check();
  });
}

TEST_F(WorkloadTest, ListBuildSumScale) {
  space_->run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 10, [](std::uint32_t i) {
      return static_cast<std::int64_t>(i);
    });
    head.status().check();
    EXPECT_EQ(workload::sum_list(head.value()), 45);
    workload::scale_list(head.value(), 3);
    EXPECT_EQ(workload::sum_list(head.value()), 135);
    EXPECT_EQ(workload::sum_list(nullptr), 0);
    workload::free_list(rt, head.value()).check();
    EXPECT_EQ(rt.heap().live_allocations(), 0u);
  });
}

TEST_F(WorkloadTest, GraphSpanningPathReachesEveryNode) {
  space_->run([&](Runtime& rt) {
    workload::GraphSpec spec;
    spec.node_count = 50;
    spec.edge_probability = 0.0;  // spanning path only
    spec.seed = 5;
    auto root = workload::build_graph(rt, spec);
    root.status().check();
    std::uint64_t reached = 0;
    workload::sum_reachable(root.value(), &reached);
    EXPECT_EQ(reached, 50u);
    workload::free_graph(rt, root.value()).check();
    EXPECT_EQ(rt.heap().live_allocations(), 0u);
  });
}

TEST_F(WorkloadTest, AcyclicGraphsHaveForwardEdgesOnly) {
  space_->run([&](Runtime& rt) {
    workload::GraphSpec spec;
    spec.node_count = 40;
    spec.edge_probability = 0.8;
    spec.allow_cycles = false;
    spec.seed = 9;
    auto root = workload::build_graph(rt, spec);
    root.status().check();
    // Values are strictly increasing along the spanning path; in a DAG a
    // DFS that tracks the path must never revisit a node on the path.
    std::uint64_t reached = 0;
    const std::int64_t sum = workload::sum_reachable(root.value(), &reached);
    EXPECT_EQ(reached, 40u);
    EXPECT_GT(sum, 0);
    workload::free_graph(rt, root.value()).check();
  });
}

TEST(AccessPattern, DeterministicAndRatioBounded) {
  const auto a = workload::make_pattern(500, 64, 0.3, 77);
  const auto b = workload::make_pattern(500, 64, 0.3, 77);
  ASSERT_EQ(a.ops.size(), 500u);
  int writes = 0;
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].kind, b.ops[i].kind);
    EXPECT_EQ(a.ops[i].target, b.ops[i].target);
    EXPECT_LT(a.ops[i].target, 64u);
    if (a.ops[i].kind == workload::OpKind::kWrite) ++writes;
  }
  EXPECT_GT(writes, 100);  // ~150 expected
  EXPECT_LT(writes, 200);
}

}  // namespace
}  // namespace srpc
