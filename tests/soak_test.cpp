// Soak: 100+ back-to-back sessions per transport with seeded
// drop/duplicate/delay injection. Every session must either complete or
// abort cleanly, at-most-once call semantics must hold (a server-side
// counter stays within [confirmed, attempted]), and after the run both
// spaces' allocation tables must be empty — nothing leaks across sessions.
//
// The injection schedule is fully deterministic: iteration i arms the
// fault transport with seed kSoakSeedBase + i, so any failure reproduces
// from the seed printed in the trace.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "core/smart_rpc.hpp"
#include "net/fault_transport.hpp"
#include "workload/list.hpp"

namespace srpc {
namespace {

using workload::ListNode;

constexpr std::uint64_t kDefaultSoakSeedBase = 0x50AB5EEDull;

// scripts/soak.sh sweeps many bases by exporting SRPC_SOAK_SEED_BASE; the
// default keeps a plain `ctest` run fully deterministic.
std::uint64_t soak_seed_base() {
  const char* env = std::getenv("SRPC_SOAK_SEED_BASE");
  if (env == nullptr || *env == '\0') return kDefaultSoakSeedBase;
  return std::strtoull(env, nullptr, 0);
}
const std::uint64_t kSoakSeedBase = soak_seed_base();
constexpr int kIterations = 55;  // 2 sessions each → 110 sessions/transport

class SoakTest : public ::testing::TestWithParam<TransportKind> {};

TEST_P(SoakTest, BackToBackSessionsSurviveInjection) {
  WorldOptions options;
  options.transport = GetParam();
  options.cost = CostModel::zero();
  options.cache.closure_bytes = 0;  // every remote read is a FETCH
  options.fault_injection = true;
  options.timeouts = TimeoutConfig::aggressive();
  World world(options);
  AddressSpace& a = world.create_space("A");
  AddressSpace& b = world.create_space("B");
  workload::register_list_type(world).status().check();

  // Server state: a monotone counter (at-most-once witness) and the most
  // recently built list (worker-thread-only access).
  std::int64_t counter = 0;
  ListNode* latest = nullptr;
  b.bind("incr", [&counter](CallContext&) -> std::int64_t { return ++counter; })
      .check();
  b.bind("get", [&counter](CallContext&) -> std::int64_t { return counter; })
      .check();
  b.bind("make",
         [&latest](CallContext& ctx, std::int64_t base) -> ListNode* {
           auto head = workload::build_list(
               ctx.runtime, 3, [base](std::uint32_t i) {
                 return base + static_cast<std::int64_t>(i);
               });
           head.status().check();
           latest = head.value();
           return latest;
         })
      .check();
  world.start().check();
  FaultTransport* fault = world.fault();
  ASSERT_NE(fault, nullptr);

  std::int64_t attempted = 0;  // incr calls issued (upper bound on counter)
  std::int64_t confirmed = 0;  // incr calls whose RETURN arrived (lower bound)
  int completed = 0;
  int aborted = 0;

  for (int iter = 0; iter < kIterations; ++iter) {
    FaultOptions fo;
    fo.seed = kSoakSeedBase + static_cast<std::uint64_t>(iter);
    fo.drop = 0.03;
    fo.duplicate = 0.05;
    fo.delay = 0.04;
    SCOPED_TRACE(::testing::Message()
                 << "iteration " << iter << ", fault seed 0x" << std::hex
                 << fo.seed);

    // --- session 1: armed -------------------------------------------------
    a.run([&](Runtime& rt) {
      fault->target_all();
      fault->arm(fo);
      bool failed = !rt.begin_session().is_ok();
      if (!failed) {
        const std::int64_t base = iter * 1000 + 100;
        auto head = typed_call<ListNode*>(rt, 1, "make", base);
        if (head.is_ok()) {
          // Prefetch (Status-returning) before any deref so a lost reply
          // can never strand an unserviceable MMU fault.
          if (rt.prefetch(head.value(), 1 << 16).is_ok()) {
            EXPECT_EQ(head.value()->value, base);
          } else {
            failed = true;
          }
        } else {
          failed = true;
        }
        ++attempted;
        auto inc = typed_call<std::int64_t>(rt, 1, "incr");
        if (inc.is_ok()) {
          ++confirmed;
        } else {
          failed = true;
        }
        if (!failed) {
          failed = !rt.end_session().is_ok();
        }
        if (failed) {
          // Heal the wire first so the abort's best-effort invalidation
          // actually clears the peer, then unwind locally.
          fault->disarm();
          ASSERT_TRUE(rt.abort_session().is_ok());
          ++aborted;
        } else {
          ++completed;
        }
      }
      fault->disarm();
    });

    // --- session 2: clean verification ------------------------------------
    a.run([&](Runtime& rt) {
      Session session(rt);
      const std::int64_t base = iter * 1000 + 500;
      auto head = typed_call<ListNode*>(rt, 1, "make", base);
      ASSERT_TRUE(head.is_ok()) << head.status().to_string();
      ASSERT_TRUE(rt.prefetch(head.value(), 1 << 16).is_ok());
      EXPECT_EQ(workload::sum_list(head.value()), 3 * base + 3);
      auto got = typed_call<std::int64_t>(rt, 1, "get");
      ASSERT_TRUE(got.is_ok()) << got.status().to_string();
      // At-most-once: the counter can exceed `confirmed` only by calls whose
      // RETURN was lost after the serve, and can never exceed `attempted`.
      EXPECT_GE(got.value(), confirmed);
      EXPECT_LE(got.value(), attempted);
      ASSERT_TRUE(session.end().is_ok());
    });
  }

  // Nothing may leak across 110 sessions: both allocation tables empty.
  EXPECT_EQ(a.run([](Runtime& rt) { return rt.cache().table().size(); }), 0u);
  EXPECT_EQ(b.run([](Runtime& rt) { return rt.cache().table().size(); }), 0u);
  EXPECT_GT(completed, 0) << "injection aborted every session";
  EXPECT_EQ(completed + aborted, kIterations);

  const auto fstats = fault->stats();
  const auto rstats = a.run([](Runtime& rt) { return rt.stats(); });
  std::cout << "[soak] seed base 0x" << std::hex << kSoakSeedBase << std::dec
            << ": " << completed << " completed, " << aborted << " aborted; "
            << "wire dropped=" << fstats.dropped
            << " duplicated=" << fstats.duplicated
            << " delayed=" << fstats.delayed
            << "; client retransmits="
            << a.run([](Runtime& rt) { return rt.endpoint().retransmits(); })
            << " stale_absorbed=" << rstats.stale_replies_absorbed
            << " aborts=" << rstats.sessions_aborted << "\n";
}

INSTANTIATE_TEST_SUITE_P(
    Transports, SoakTest,
    ::testing::Values(TransportKind::kSimulated, TransportKind::kSockets),
    [](const ::testing::TestParamInfo<TransportKind>& info) {
      return info.param == TransportKind::kSimulated ? "Sim" : "Sockets";
    });

}  // namespace
}  // namespace srpc
