// Remote function references (the paper's §6 future-work extension):
// higher-order RPC — functions passed as arguments, invoked transparently
// whether local or remote.
#include <gtest/gtest.h>

#include "core/funcref.hpp"
#include "core/smart_rpc.hpp"
#include "workload/list.hpp"

namespace srpc {
namespace {

using workload::ListNode;

class FuncRefTest : public ::testing::Test {
 protected:
  FuncRefTest() : world_([] {
          WorldOptions options;
          options.cost = CostModel::zero();
          return options;
        }()) {
    a_ = &world_.create_space("A");
    b_ = &world_.create_space("B");
    workload::register_list_type(world_).status().check();
  }

  World world_;
  AddressSpace* a_ = nullptr;
  AddressSpace* b_ = nullptr;
};

// The classic higher-order use: map a caller-supplied function over a
// remote structure. The callee invokes the FuncRef, which calls BACK into
// the caller for every element.
TEST_F(FuncRefTest, MapWithCallerSuppliedFunction) {
  ASSERT_TRUE(b_->bind("map",
                       [](CallContext& ctx, ListNode* head, FuncRef fn) -> std::int64_t {
                         std::int64_t sum = 0;
                         for (ListNode* n = head; n != nullptr; n = n->next) {
                           auto mapped = invoke<std::int64_t>(ctx.runtime, fn, n->value);
                           mapped.status().check();
                           n->value = mapped.value();
                           sum += n->value;
                         }
                         return sum;
                       })
                  .is_ok());

  a_->run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 5, [](std::uint32_t i) {
      return static_cast<std::int64_t>(i + 1);
    });
    head.status().check();

    auto square = make_funcref(rt, "square", [](CallContext&, std::int64_t x) {
      return x * x;
    });
    ASSERT_TRUE(square.is_ok());

    Session session(rt);
    auto sum = session.call<std::int64_t>(b_->id(), "map", head.value(),
                                          square.value());
    ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
    EXPECT_EQ(sum.value(), 1 + 4 + 9 + 16 + 25);
    // The mapped values came home via the modified data set.
    EXPECT_EQ(workload::sum_list(head.value()), 55);
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(FuncRefTest, LocalInvokeSkipsTheWire) {
  a_->run([&](Runtime& rt) {
    auto triple = make_funcref(rt, "triple", [](CallContext&, std::int64_t x) {
      return 3 * x;
    });
    ASSERT_TRUE(triple.is_ok());
    auto v = invoke<std::int64_t>(rt, triple.value(), std::int64_t{14});
    ASSERT_TRUE(v.is_ok()) << v.status().to_string();
    EXPECT_EQ(v.value(), 42);
  });
  // Nothing crossed the network.
  EXPECT_EQ(world_.net_stats().messages, 0u);
}

TEST_F(FuncRefTest, FuncRefsForwardThroughThirdSpaces) {
  AddressSpace& c = world_.create_space("C");
  const SpaceId c_id = c.id();
  // B forwards the reference to C; C invokes it (a callback to A through
  // two hops of forwarding).
  ASSERT_TRUE(c.bind("apply",
                     [](CallContext& ctx, FuncRef fn, std::int64_t x) -> std::int64_t {
                       auto v = invoke<std::int64_t>(ctx.runtime, fn, x);
                       v.status().check();
                       return v.value();
                     })
                  .is_ok());
  ASSERT_TRUE(b_->bind("forward",
                       [c_id](CallContext& ctx, FuncRef fn, std::int64_t x)
                           -> std::int64_t {
                         auto v = typed_call<std::int64_t>(ctx.runtime, c_id, "apply",
                                                           fn, x);
                         v.status().check();
                         return v.value();
                       })
                  .is_ok());

  a_->run([&](Runtime& rt) {
    auto negate = make_funcref(rt, "negate", [](CallContext&, std::int64_t x) {
      return -x;
    });
    ASSERT_TRUE(negate.is_ok());
    Session session(rt);
    auto v = session.call<std::int64_t>(b_->id(), "forward", negate.value(),
                                        std::int64_t{99});
    ASSERT_TRUE(v.is_ok()) << v.status().to_string();
    EXPECT_EQ(v.value(), -99);
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(FuncRefTest, NullAndDanglingReferencesFailCleanly) {
  a_->run([&](Runtime& rt) {
    auto null_invoke = invoke<std::int64_t>(rt, FuncRef{}, std::int64_t{1});
    ASSERT_FALSE(null_invoke.is_ok());
    EXPECT_EQ(null_invoke.status().code(), StatusCode::kInvalidArgument);

    auto dangling = invoke<std::int64_t>(rt, FuncRef{rt.id(), "nothing-here"},
                                         std::int64_t{1});
    ASSERT_FALSE(dangling.is_ok());
    EXPECT_EQ(dangling.status().code(), StatusCode::kNotFound);
  });
}

TEST_F(FuncRefTest, ReferencesCanCarryPointerArguments) {
  // A function reference whose signature itself takes a remote pointer.
  a_->run([&](Runtime& rt) {
    make_funcref(rt, "head_value", [](CallContext&, ListNode* head) -> std::int64_t {
      return head != nullptr ? head->value : -1;
    }).status().check();
  });
  ASSERT_TRUE(b_->bind("call_with_list",
                       [](CallContext& ctx, FuncRef fn, ListNode* head)
                           -> std::int64_t {
                         auto v = invoke<std::int64_t>(ctx.runtime, fn, head);
                         v.status().check();
                         return v.value();
                       })
                  .is_ok());
  a_->run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 3, [](std::uint32_t i) {
      return static_cast<std::int64_t>(100 + i);
    });
    head.status().check();
    Session session(rt);
    auto v = session.call<std::int64_t>(b_->id(), "call_with_list",
                                        FuncRef{rt.id(), "head_value"}, head.value());
    ASSERT_TRUE(v.is_ok()) << v.status().to_string();
    EXPECT_EQ(v.value(), 100);
    ASSERT_TRUE(session.end().is_ok());
  });
}

}  // namespace
}  // namespace srpc
