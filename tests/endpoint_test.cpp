// RpcEndpoint unit tests: re-entrant await, deferral, error matching.
#include <gtest/gtest.h>

#include <vector>

#include "net/sim_network.hpp"
#include "rpc/rpc_endpoint.hpp"

namespace srpc {
namespace {

Message make(MessageType type, SpaceId from, SpaceId to, std::uint64_t seq) {
  Message msg;
  msg.type = type;
  msg.from = from;
  msg.to = to;
  msg.session = 1;
  msg.seq = seq;
  return msg;
}

class EndpointTest : public ::testing::Test {
 protected:
  EndpointTest() : endpoint_(0, net_, box_) { net_.attach(0, &box_); }

  SimNetwork net_{CostModel::zero()};
  Mailbox box_;
  RpcEndpoint endpoint_;
};

TEST_F(EndpointTest, SendStampsTheSender) {
  Mailbox peer;
  net_.attach(1, &peer);
  Message msg = make(MessageType::kCall, 99 /*overwritten*/, 1, 5);
  ASSERT_TRUE(endpoint_.send(std::move(msg)).is_ok());
  auto item = peer.try_pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(std::get<Message>(*item).from, 0u);
}

TEST_F(EndpointTest, AwaitMatchesTypeAndSeq) {
  ASSERT_TRUE(box_.push(make(MessageType::kReturn, 1, 0, 41)).is_ok());  // wrong seq
  ASSERT_TRUE(box_.push(make(MessageType::kFetchReply, 1, 0, 42)).is_ok());  // wrong type
  ASSERT_TRUE(box_.push(make(MessageType::kReturn, 1, 0, 42)).is_ok());  // match

  std::vector<MessageType> served;
  auto reply = endpoint_.await_reply(MessageType::kReturn, 42, [&](Message m) {
    served.push_back(m.type);
    return Status::ok();
  });
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(reply.value().seq, 42u);
  ASSERT_EQ(served.size(), 2u);  // the two non-matching messages were served
}

TEST_F(EndpointTest, ErrorRepliesMatchTheAwait) {
  ASSERT_TRUE(box_.push(make(MessageType::kError, 1, 0, 7)).is_ok());
  auto reply = endpoint_.await_reply(MessageType::kReturn, 7, nullptr);
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(reply.value().type, MessageType::kError);
}

TEST_F(EndpointTest, NullDispatcherDefersNonMatching) {
  ASSERT_TRUE(box_.push(make(MessageType::kCall, 1, 0, 100)).is_ok());
  ASSERT_TRUE(box_.push(make(MessageType::kFetchReply, 1, 0, 9)).is_ok());
  auto reply = endpoint_.await_reply(MessageType::kFetchReply, 9, nullptr);
  ASSERT_TRUE(reply.is_ok());
  // The unrelated CALL was deferred and resurfaces via next().
  auto deferred = endpoint_.next();
  ASSERT_TRUE(deferred.is_ok());
  EXPECT_EQ(std::get<Message>(deferred.value()).type, MessageType::kCall);
}

TEST_F(EndpointTest, TasksAreDeferredDuringAwait) {
  int ran = 0;
  ASSERT_TRUE(box_.push_task([&ran] { ++ran; }).is_ok());
  ASSERT_TRUE(box_.push(make(MessageType::kReturn, 1, 0, 3)).is_ok());
  auto reply = endpoint_.await_reply(MessageType::kReturn, 3, nullptr);
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(ran, 0);  // not executed on the await stack
  auto item = endpoint_.next();
  ASSERT_TRUE(item.is_ok());
  std::get<Task>(item.value())();
  EXPECT_EQ(ran, 1);
}

TEST_F(EndpointTest, DispatcherErrorsAbortTheAwait) {
  ASSERT_TRUE(box_.push(make(MessageType::kCall, 1, 0, 50)).is_ok());
  auto reply = endpoint_.await_reply(MessageType::kReturn, 60, [](Message) {
    return internal_error("handler blew up");
  });
  ASSERT_FALSE(reply.is_ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInternal);
}

TEST_F(EndpointTest, ClosedMailboxEndsTheAwait) {
  box_.close();
  auto reply = endpoint_.await_reply(MessageType::kReturn, 1, nullptr);
  ASSERT_FALSE(reply.is_ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
}

TEST_F(EndpointTest, SequenceNumbersAreMonotonic) {
  const std::uint64_t first = endpoint_.next_seq();
  const std::uint64_t second = endpoint_.next_seq();
  EXPECT_GT(second, first);
}

}  // namespace
}  // namespace srpc
