// CacheManager unit tests: swizzling into protected pages, fault-driven
// fills against a mock home, dirty tracking, overlays, invalidation.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "core/cache_manager.hpp"
#include "core/graph_payload.hpp"
#include "types/type_registry.hpp"

namespace srpc {
namespace {

constexpr SpaceId kSelf = 0;
constexpr SpaceId kHomeA = 1;
constexpr SpaceId kHomeB = 2;

// An in-memory "home" serving fetches: fake home addresses map to typed
// host-layout images whose pointer fields hold other fake home addresses.
class MockHome : public PointerTranslator {
 public:
  MockHome(SpaceId space, const TypeRegistry& registry, const LayoutEngine& layouts)
      : space_(space), codec_{registry, layouts} {}

  void put(std::uint64_t addr, TypeId type, std::vector<std::uint8_t> image) {
    objects_[addr] = {type, std::move(image)};
  }

  [[nodiscard]] SpaceId space() const noexcept { return space_; }

  Result<LongPointer> unswizzle(std::uint64_t ordinary, TypeId pointee) override {
    auto it = objects_.find(ordinary);
    if (it == objects_.end()) {
      (void)pointee;
      return not_found("mock home: unknown address");
    }
    return LongPointer{space_, ordinary, it->second.type};
  }

  Result<std::uint64_t> swizzle(const LongPointer&, TypeId) override {
    return internal_error("mock home never swizzles");
  }

  // Builds a FETCH_REPLY buffer (count + one payload) for `addrs`.
  Result<ByteBuffer> serve(std::span<const LongPointer> pointers) {
    std::vector<GraphObjectRef> refs;
    for (const LongPointer& p : pointers) {
      auto it = objects_.find(p.address);
      if (it == objects_.end()) {
        return not_found("mock home: fetch of unknown datum");
      }
      refs.push_back({p.address, it->second.type, it->second.image.data()});
    }
    ByteBuffer out;
    xdr::Encoder enc(out);
    enc.put_u32(1);
    SRPC_RETURN_IF_ERROR(
        encode_graph_payload(codec_, host_arch(), space_, refs, *this, out));
    return out;
  }

 private:
  struct Obj {
    TypeId type;
    std::vector<std::uint8_t> image;
  };
  SpaceId space_;
  ValueCodec codec_;
  std::map<std::uint64_t, Obj> objects_;
};

class MockFetcher final : public PageFetcher {
 public:
  void add_home(MockHome* home) { homes_[home->space()] = home; }

  Result<ByteBuffer> fetch(SpaceId home, std::span<const LongPointer> pointers,
                           std::uint64_t, SessionId) override {
    ++fetches;
    auto it = homes_.find(home);
    if (it == homes_.end()) return not_found("no such mock home");
    return it->second->serve(pointers);
  }

  void charge_fault() override { ++faults; }

  Result<std::uint64_t> swizzle_home(const LongPointer&, TypeId) override {
    return internal_error("self-homed pointer in cache test");
  }

  int fetches = 0;
  int faults = 0;
  std::map<SpaceId, MockHome*> homes_;
};

struct Node {
  Node* next;
  std::int64_t value;
};

class CacheManagerTest : public ::testing::Test {
 protected:
  CacheManagerTest() : layouts_(registry_), home_a_(kHomeA, registry_, layouts_),
                       home_b_(kHomeB, registry_, layouts_) {
    auto node = registry_.declare_struct("CNode");
    node.status().check();
    node_ = node.value();
    registry_
        .define_struct(node_, {{"next", registry_.pointer_to(node_)},
                               {"value", TypeRegistry::scalar_id(ScalarType::kI64)}})
        .check();
    fetcher_.add_home(&home_a_);
    fetcher_.add_home(&home_b_);
  }

  std::unique_ptr<CacheManager> make_cache(
      AllocationStrategy strategy = AllocationStrategy::kClusterByOrigin) {
    CacheOptions options;
    options.page_count = 64;
    options.strategy = strategy;
    auto cache = std::make_unique<CacheManager>(registry_, layouts_, host_arch(),
                                                kSelf, options, fetcher_);
    cache->init().check();
    return cache;
  }

  // Registers a list node image in a mock home.
  void put_node(MockHome& home, std::uint64_t addr, std::uint64_t next_addr,
                std::int64_t value) {
    std::vector<std::uint8_t> image(sizeof(Node), 0);
    Node n{reinterpret_cast<Node*>(next_addr), value};
    std::memcpy(image.data(), &n, sizeof n);
    home.put(addr, node_, std::move(image));
  }

  TypeRegistry registry_;
  LayoutEngine layouts_;
  MockHome home_a_;
  MockHome home_b_;
  MockFetcher fetcher_;
  TypeId node_ = kInvalidTypeId;
};

TEST_F(CacheManagerTest, SwizzleAllocatesStableProtectedLocation) {
  auto cache = make_cache();
  const LongPointer lp{kHomeA, 0x1000, node_};
  auto first = cache->swizzle(lp, node_);
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  auto second = cache->swizzle(lp, node_);
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(first.value(), second.value());  // idempotent

  const auto* entry = cache->lookup(lp);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(cache->page_state(entry->page), PageState::kAllocated);
  EXPECT_FALSE(cache->is_resident(entry->local));
  EXPECT_TRUE(cache->contains(entry->local));
}

TEST_F(CacheManagerTest, SwizzleRejectsNullAndSelf) {
  auto cache = make_cache();
  EXPECT_FALSE(cache->swizzle(LongPointer::null(), node_).is_ok());
  EXPECT_EQ(cache->swizzle({kSelf, 0x1000, node_}, node_).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(CacheManagerTest, ClusterStrategySeparatesOrigins) {
  auto cache = make_cache(AllocationStrategy::kClusterByOrigin);
  cache->swizzle({kHomeA, 0x1000, node_}, node_).status().check();
  cache->swizzle({kHomeB, 0x1000, node_}, node_).status().check();
  const auto* a = cache->lookup({kHomeA, 0x1000, node_});
  const auto* b = cache->lookup({kHomeB, 0x1000, node_});
  EXPECT_NE(a->page, b->page);
}

TEST_F(CacheManagerTest, MixedStrategySharesPages) {
  auto cache = make_cache(AllocationStrategy::kMixed);
  cache->swizzle({kHomeA, 0x1000, node_}, node_).status().check();
  cache->swizzle({kHomeB, 0x1000, node_}, node_).status().check();
  const auto* a = cache->lookup({kHomeA, 0x1000, node_});
  const auto* b = cache->lookup({kHomeB, 0x1000, node_});
  EXPECT_EQ(a->page, b->page);
}

TEST_F(CacheManagerTest, FaultTransfersAllDataOnThePage) {
  put_node(home_a_, 0x1000, 0, 111);
  put_node(home_a_, 0x2000, 0, 222);
  auto cache = make_cache();
  auto p1 = cache->swizzle({kHomeA, 0x1000, node_}, node_);
  auto p2 = cache->swizzle({kHomeA, 0x2000, node_}, node_);
  ASSERT_TRUE(p1.is_ok());
  ASSERT_TRUE(p2.is_ok());

  // First access faults; the fill must bring BOTH (paper §3.2: "All of the
  // other data allocated to the page must be transferred at this time").
  const Node* n1 = reinterpret_cast<const Node*>(p1.value());
  EXPECT_EQ(n1->value, 111);
  EXPECT_EQ(fetcher_.faults, 1);
  EXPECT_EQ(fetcher_.fetches, 1);

  const Node* n2 = reinterpret_cast<const Node*>(p2.value());
  EXPECT_EQ(n2->value, 222);
  EXPECT_EQ(fetcher_.faults, 1);  // no second fault
  EXPECT_EQ(cache->stats().objects_filled, 2u);
}

TEST_F(CacheManagerTest, PointerFieldsAreSwizzledDuringFill) {
  put_node(home_a_, 0x1000, 0x2000, 1);
  put_node(home_a_, 0x2000, 0, 2);
  auto cache = make_cache();
  auto p1 = cache->swizzle({kHomeA, 0x1000, node_}, node_);
  ASSERT_TRUE(p1.is_ok());

  const Node* n1 = reinterpret_cast<const Node*>(p1.value());
  EXPECT_EQ(n1->value, 1);
  // The next pointer was swizzled to a local protected location.
  ASSERT_NE(n1->next, nullptr);
  EXPECT_TRUE(cache->contains(n1->next));
  // Dereferencing it faults and fetches the second node.
  EXPECT_EQ(n1->next->value, 2);
  EXPECT_EQ(fetcher_.faults, 2);
}

TEST_F(CacheManagerTest, WriteFaultUpgradesCleanPageToDirty) {
  put_node(home_a_, 0x1000, 0, 5);
  auto cache = make_cache();
  auto p = cache->swizzle({kHomeA, 0x1000, node_}, node_);
  ASSERT_TRUE(p.is_ok());
  Node* n = reinterpret_cast<Node*>(p.value());
  EXPECT_EQ(n->value, 5);  // read fault -> clean
  const auto* entry = cache->lookup({kHomeA, 0x1000, node_});
  EXPECT_EQ(cache->page_state(entry->page), PageState::kClean);

  n->value = 50;  // write fault -> dirty
  EXPECT_EQ(cache->page_state(entry->page), PageState::kDirty);
  EXPECT_EQ(fetcher_.faults, 2);
  EXPECT_EQ(cache->stats().write_faults, 1u);

  auto modified = cache->collect_modified();
  ASSERT_EQ(modified.size(), 1u);
  EXPECT_EQ(modified[0].id.address, 0x1000u);
}

TEST_F(CacheManagerTest, DirectWriteToUnfetchedDataTakesTwoFaults) {
  put_node(home_a_, 0x1000, 0, 7);
  auto cache = make_cache();
  auto p = cache->swizzle({kHomeA, 0x1000, node_}, node_);
  ASSERT_TRUE(p.is_ok());
  Node* n = reinterpret_cast<Node*>(p.value());
  n->value = 70;  // fill fault, then genuine write-upgrade fault
  EXPECT_EQ(fetcher_.faults, 2);
  EXPECT_EQ(n->value, 70);
  EXPECT_EQ(n->next, nullptr);
}

TEST_F(CacheManagerTest, IncomingDirtyOverwritesResidentData) {
  put_node(home_a_, 0x1000, 0, 5);
  auto cache = make_cache();
  auto p = cache->swizzle({kHomeA, 0x1000, node_}, node_);
  ASSERT_TRUE(p.is_ok());
  const Node* n = reinterpret_cast<const Node*>(p.value());
  EXPECT_EQ(n->value, 5);

  auto dest = cache->prepare_incoming_dirty({kHomeA, 0x1000, node_});
  ASSERT_TRUE(dest.is_ok());
  Node incoming{nullptr, 99};
  std::memcpy(dest.value(), &incoming, sizeof incoming);
  EXPECT_EQ(n->value, 99);
  const auto* entry = cache->lookup({kHomeA, 0x1000, node_});
  EXPECT_EQ(cache->page_state(entry->page), PageState::kDirty);
}

TEST_F(CacheManagerTest, IncomingDirtyOverlayAppliesAtFillTime) {
  put_node(home_a_, 0x1000, 0, 5);  // home's (stale) value
  auto cache = make_cache();
  cache->swizzle({kHomeA, 0x1000, node_}, node_).status().check();

  // A modified data set arrives for the not-yet-fetched datum.
  auto dest = cache->prepare_incoming_dirty({kHomeA, 0x1000, node_});
  ASSERT_TRUE(dest.is_ok());
  Node newer{nullptr, 500};
  std::memcpy(dest.value(), &newer, sizeof newer);

  // The overlay is already part of the modified set (it must keep
  // travelling even though the page never faulted).
  auto modified = cache->collect_modified();
  ASSERT_EQ(modified.size(), 1u);

  // Faulting the page fetches the home's stale bytes but overlays ours.
  const auto* entry = cache->lookup({kHomeA, 0x1000, node_});
  const Node* n = reinterpret_cast<const Node*>(entry->local);
  EXPECT_EQ(n->value, 500);
  EXPECT_EQ(cache->page_state(entry->page), PageState::kDirty);
}

TEST_F(CacheManagerTest, AllocateResidentIsBornDirtyAndRebinds) {
  auto cache = make_cache();
  const LongPointer provisional{kHomeA, (1ULL << 63) | (1ULL << 40), node_};
  auto slot = cache->allocate_resident(provisional, sizeof(Node), alignof(Node));
  ASSERT_TRUE(slot.is_ok()) << slot.status().to_string();
  Node* n = static_cast<Node*>(slot.value());
  n->value = 42;  // writable immediately, no faults
  EXPECT_EQ(fetcher_.faults, 0);

  ASSERT_TRUE(cache->rebind(provisional, {kHomeA, 0x9000, node_}).is_ok());
  auto modified = cache->collect_modified();
  ASSERT_EQ(modified.size(), 1u);
  EXPECT_EQ(modified[0].id.address, 0x9000u);
}

TEST_F(CacheManagerTest, SealedPageRefusesNewAllocations) {
  put_node(home_a_, 0x1000, 0, 1);
  auto cache = make_cache();
  auto p1 = cache->swizzle({kHomeA, 0x1000, node_}, node_);
  ASSERT_TRUE(p1.is_ok());
  const auto* first = cache->lookup({kHomeA, 0x1000, node_});
  const PageIndex first_page = first->page;

  // Make the page resident (seals it)...
  EXPECT_EQ(reinterpret_cast<const Node*>(p1.value())->value, 1);
  ASSERT_EQ(cache->page_state(first_page), PageState::kClean);
  // ...then swizzle another datum of the same origin: it must land elsewhere.
  cache->swizzle({kHomeA, 0x2000, node_}, node_).status().check();
  const auto* second = cache->lookup({kHomeA, 0x2000, node_});
  EXPECT_NE(second->page, first_page);
}

TEST_F(CacheManagerTest, LargeDatumSpansExclusivePages) {
  const TypeId big = registry_.array_of(TypeRegistry::scalar_id(ScalarType::kI64),
                                        1500);  // 12000 bytes: 3 pages
  std::vector<std::uint8_t> image(12000, 0);
  for (int i = 0; i < 1500; ++i) {
    reinterpret_cast<std::int64_t*>(image.data())[i] = i;
  }
  home_a_.put(0x8000, big, std::move(image));

  auto cache = make_cache();
  auto p = cache->swizzle({kHomeA, 0x8000, big}, big);
  ASSERT_TRUE(p.is_ok());
  const auto* entry = cache->lookup({kHomeA, 0x8000, big});
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->size, 12000u);

  // Fault in the MIDDLE page: the whole datum must arrive.
  const auto* values = reinterpret_cast<const std::int64_t*>(p.value());
  EXPECT_EQ(values[800], 800);   // middle page
  EXPECT_EQ(values[0], 0);       // first page, no extra fault
  EXPECT_EQ(values[1499], 1499); // last page, no extra fault
  EXPECT_EQ(fetcher_.faults, 1);
}

TEST_F(CacheManagerTest, InteriorPointersResolveIntoContainingEntry) {
  const TypeId arr =
      registry_.array_of(TypeRegistry::scalar_id(ScalarType::kI64), 8);
  std::vector<std::uint8_t> image(64, 0);
  home_a_.put(0x4000, arr, std::move(image));

  auto cache = make_cache();
  auto base = cache->swizzle({kHomeA, 0x4000, arr}, arr);
  ASSERT_TRUE(base.is_ok());
  // An interior home pointer to element 3 maps inside the same entry.
  auto elem = cache->swizzle({kHomeA, 0x4000 + 24, TypeRegistry::scalar_id(ScalarType::kI64)},
                             TypeRegistry::scalar_id(ScalarType::kI64));
  ASSERT_TRUE(elem.is_ok());
  EXPECT_EQ(elem.value(), base.value() + 24);

  // And unswizzling the interior cache address recovers the home address.
  auto lp = cache->unswizzle(reinterpret_cast<const void*>(base.value() + 24));
  ASSERT_TRUE(lp.is_ok()) << lp.status().to_string();
  EXPECT_EQ(lp.value().address, 0x4000u + 24);
}

TEST_F(CacheManagerTest, InvalidateDropsEverything) {
  put_node(home_a_, 0x1000, 0, 1);
  auto cache = make_cache();
  auto p = cache->swizzle({kHomeA, 0x1000, node_}, node_);
  ASSERT_TRUE(p.is_ok());
  EXPECT_EQ(reinterpret_cast<const Node*>(p.value())->value, 1);

  cache->invalidate_all();
  EXPECT_EQ(cache->table().size(), 0u);
  EXPECT_EQ(cache->lookup({kHomeA, 0x1000, node_}), nullptr);
  EXPECT_TRUE(cache->collect_modified().empty());
  // The old page is back to kEmpty: a stale dereference is detectable.
  EXPECT_FALSE(cache->on_fault(reinterpret_cast<void*>(p.value()), FaultAccess::kRead));

  // The arena is reusable: fresh swizzles work.
  auto again = cache->swizzle({kHomeA, 0x1000, node_}, node_);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(reinterpret_cast<const Node*>(again.value())->value, 1);
}

TEST_F(CacheManagerTest, FetchFailureFailsTheFault) {
  auto cache = make_cache();
  // Swizzle a pointer to a datum the home does not have (dangling).
  auto p = cache->swizzle({kHomeA, 0xDEAD000, node_}, node_);
  ASSERT_TRUE(p.is_ok());
  EXPECT_FALSE(cache->on_fault(reinterpret_cast<void*>(p.value()), FaultAccess::kRead));
}

TEST_F(CacheManagerTest, IncorporateCleanPayloadSkipsExistingData) {
  put_node(home_a_, 0x1000, 0, 5);
  auto cache = make_cache();
  auto p = cache->swizzle({kHomeA, 0x1000, node_}, node_);
  ASSERT_TRUE(p.is_ok());
  Node* n = reinterpret_cast<Node*>(p.value());
  EXPECT_EQ(n->value, 5);
  n->value = 777;  // dirty local copy

  // A clean closure payload with the stale home value arrives; it must NOT
  // clobber the newer local data.
  home_a_.put(0x1000, node_, [] {
    std::vector<std::uint8_t> image(sizeof(Node), 0);
    Node stale{nullptr, 5};
    std::memcpy(image.data(), &stale, sizeof stale);
    return image;
  }());
  LongPointer lp{kHomeA, 0x1000, node_};
  auto reply = home_a_.serve(std::span<const LongPointer>(&lp, 1));
  ASSERT_TRUE(reply.is_ok());
  xdr::Decoder dec(reply.value());
  ASSERT_TRUE(dec.get_u32().is_ok());  // skip the payload count
  ASSERT_TRUE(cache->incorporate_clean_payload(reply.value()).is_ok());
  EXPECT_EQ(n->value, 777);
  EXPECT_EQ(cache->stats().objects_skipped, 1u);
}

}  // namespace
}  // namespace srpc
