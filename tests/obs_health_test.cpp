// Observability beyond "record everything": the flight recorder's bounded
// ring and its automatic dump triggers (crash, incarnation fence, SLO
// breach), the SLO engine's error budgets, critical-path attribution over
// the span tree, and the aggregated health snapshot. The chaos test is the
// acceptance bar: a recovery-style kill must leave behind a black box whose
// event sequence shows the injected fault, the fence, and the rejoin.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/smart_rpc.hpp"
#include "net/fault_transport.hpp"
#include "obs/critical_path.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/slo.hpp"
#include "workload/list.hpp"

namespace srpc {
namespace {

using workload::ListNode;

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

// --- flight-recorder ring ---------------------------------------------------

TEST(FlightRecorderTest, RingWrapsKeepingNewestOldestFirst) {
  FlightRecorder fr(SpaceId{0}, "t", /*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    fr.event(FlightEventKind::kCheckpoint, /*ts_ns=*/100 + i,
             kInvalidSpaceId, "tick", /*arg=*/i);
  }
  EXPECT_EQ(fr.capacity(), 4u);
  EXPECT_EQ(fr.total_recorded(), 10u);
  const std::vector<FlightEvent> events = fr.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Events 6..9 survive, rendered oldest first.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].arg, 6 + i);
    EXPECT_EQ(events[i].ts_ns, 106u + static_cast<std::uint64_t>(i));
  }
}

TEST(FlightRecorderTest, DumpRendersRingAndFeedsSink) {
  FlightRecorder fr(SpaceId{3}, "black-box", /*capacity=*/8);
  fr.frame(FlightEventKind::kFrameSend, 10, /*msg_type=*/1, SpaceId{1},
           /*session=*/7, /*seq=*/42);
  fr.event(FlightEventKind::kDetector, 20, SpaceId{1}, "probe miss");

  SpaceId sink_space = kInvalidSpaceId;
  std::string sink_reason;
  std::string sink_json;
  fr.set_dump_sink([&](SpaceId s, std::string_view reason, std::string json) {
    sink_space = s;
    sink_reason = std::string(reason);
    sink_json = std::move(json);
  });

  const std::string json = fr.dump("unit", /*now_ns=*/30);
  EXPECT_EQ(fr.dump_count(), 1u);
  EXPECT_EQ(sink_space, SpaceId{3});
  EXPECT_EQ(sink_reason, "unit");
  EXPECT_EQ(sink_json, json);
  EXPECT_TRUE(contains(json, "\"reason\": \"unit\""));
  EXPECT_TRUE(contains(json, "\"name\": \"black-box\""));
  EXPECT_TRUE(contains(json, "FRAME_SEND"));
  EXPECT_TRUE(contains(json, "DETECTOR"));
  EXPECT_TRUE(contains(json, "probe miss"));
  EXPECT_TRUE(contains(json, "\"seq\": 42"));
  EXPECT_EQ(fr.last_dump(), json);
}

// --- histogram percentile fix -----------------------------------------------

TEST(HistogramPercentileTest, TailClampsToObservedRange) {
  Histogram h;
  h.record(70);  // lands in bucket [64, 127]
  // Before the clamp fix, interpolation inside the bucket reported ~95 for
  // any quantile; one observation of 70 must report 70 at every quantile.
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 70.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 70.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.999), 70.0);

  MetricsRegistry registry;
  Histogram& spread = registry.histogram("spread");
  for (std::uint64_t v = 1; v <= 1000; ++v) spread.record(v);
  EXPECT_LE(spread.percentile(0.999), 1000.0);
  EXPECT_GE(spread.percentile(0.999), spread.percentile(0.99));
  EXPECT_TRUE(contains(registry.to_json(), "\"p999\""));
}

// --- SLO engine --------------------------------------------------------------

TEST(SloEngineTest, BurnRateBreachesOnceWithEnoughSamples) {
  SloConfig config;
  config.objectives.push_back(
      {"FETCH", /*threshold_ns=*/100, /*target=*/0.5, /*window=*/8,
       /*breach_burn=*/1.5});
  SloEngine engine;
  engine.configure(config);
  ASSERT_TRUE(engine.enabled());

  EXPECT_FALSE(engine.observe("CALL", 1).tracked);  // no objective -> ignored

  int breach_edges = 0;
  for (int i = 0; i < 8; ++i) {
    const SloObservation obs = engine.observe("FETCH", /*latency_ns=*/1000);
    EXPECT_TRUE(obs.tracked);
    EXPECT_TRUE(obs.violated);
    if (obs.breach_edge) ++breach_edges;
  }
  // All 8 samples violate: burn = 1/(1-0.5) = 2 >= 1.5, and the edge fires
  // exactly once (at the minimum sample count), not on every sample.
  EXPECT_EQ(breach_edges, 1);
  EXPECT_EQ(engine.total_violations(), 8u);
  const auto stats = engine.stats();
  ASSERT_EQ(stats.count("FETCH"), 1u);
  EXPECT_TRUE(stats.at("FETCH").in_breach);
  EXPECT_DOUBLE_EQ(stats.at("FETCH").budget_remaining, 0.0);
  EXPECT_TRUE(contains(engine.to_json(), "\"in_breach\": true"));

  // Recovery: fast samples push the violations out of the window.
  for (int i = 0; i < 8; ++i) engine.observe("FETCH", 1);
  EXPECT_FALSE(engine.stats().at("FETCH").in_breach);
}

// --- chaos: crash dump, fence dump, rejoin in the black box ------------------

class ObsChaosTest : public ::testing::Test {
 protected:
  static constexpr SpaceId kA = 0;
  static constexpr SpaceId kB = 1;

  ObsChaosTest() {
    WorldOptions options;
    options.cost = CostModel::zero();
    options.cache.closure_bytes = 0;
    options.fault_injection = true;
    options.timeouts = TimeoutConfig::aggressive();
    options.recovery = true;
    world_ = std::make_unique<World>(options);
    a_ = &world_->create_space("A");
    b_ = &world_->create_space("B");
    workload::register_list_type(*world_).status().check();
    rebind_b();
    b_->run([this](Runtime& rt) {
      auto head = workload::build_list(rt, 3, [](std::uint32_t i) {
        return static_cast<std::int64_t>(10 + i);
      });
      head.status().check();
      head_b_ = head.value();
      rt.checkpoint_now();
    });
    fault_ = world_->fault();
  }

  ~ObsChaosTest() override {
    if (fault_ != nullptr) fault_->disarm();
  }

  void rebind_b() {
    b_->bind("headB", [this](CallContext&) -> ListNode* { return head_b_; })
        .check();
  }

  static bool has_dump(const std::vector<World::FlightDump>& dumps,
                       SpaceId space, const std::string& reason) {
    for (const auto& d : dumps) {
      if (d.space == space && d.reason == reason) return true;
    }
    return false;
  }

  std::unique_ptr<World> world_;
  AddressSpace* a_ = nullptr;
  AddressSpace* b_ = nullptr;
  FaultTransport* fault_ = nullptr;
  ListNode* head_b_ = nullptr;
};

TEST_F(ObsChaosTest, CrashSpaceArchivesBlackBoxWithPreCrashTraffic) {
  a_->run([&](Runtime& rt) {
    Session session(rt);
    auto hb = typed_call<ListNode*>(rt, kB, "headB");
    ASSERT_TRUE(hb.is_ok()) << hb.status().to_string();
    ASSERT_TRUE(session.end().is_ok());
  });

  world_->crash_space(kB);

  const auto dumps = world_->flight_dumps();
  ASSERT_TRUE(has_dump(dumps, kB, "crash_space"));
  for (const auto& d : dumps) {
    if (d.space != kB || d.reason != "crash_space") continue;
    // The black box holds the served call's frames and the crash marker.
    EXPECT_TRUE(contains(d.json, "FRAME_RECV")) << d.json;
    EXPECT_TRUE(contains(d.json, "FRAME_SEND")) << d.json;
    EXPECT_TRUE(contains(d.json, "CRASH")) << d.json;
    EXPECT_TRUE(contains(d.json, "\"reason\": \"crash_space\""));
  }
}

TEST_F(ObsChaosTest, FenceDumpShowsFaultFenceAndRejoin) {
  // Injected fault: park every FETCH_REPLY on the wire. A's fetch retries
  // (RETRANSMIT events) and times out; the replies stay held across B's
  // death, stamped with incarnation 1.
  a_->run([&](Runtime& rt) {
    ASSERT_TRUE(rt.begin_session().is_ok());
    auto hb = typed_call<ListNode*>(rt, kB, "headB");
    ASSERT_TRUE(hb.is_ok()) << hb.status().to_string();
    FaultOptions opts;
    opts.delay = 1.0;
    opts.delay_window = 100000;
    fault_->target({MessageType::kFetchReply});
    fault_->arm(opts);
    auto fetched = rt.prefetch(hb.value(), 1 << 16);
    ASSERT_FALSE(fetched.is_ok());
  });
  world_->crash_space(kB);
  a_->run([](Runtime& rt) { ASSERT_TRUE(rt.abort_session().is_ok()); });
  ASSERT_TRUE(world_->restart_space(kB).is_ok());
  rebind_b();

  // Release incarnation 1's parked replies into a world on incarnation 2:
  // A fences them, and the first fence per {peer, incarnation} dumps A's
  // ring — which by now also holds the retransmits and the served REJOIN.
  fault_->disarm();
  a_->run([&](Runtime& rt) {
    EXPECT_GT(rt.stats().fenced_stale_messages, 0u);
  });

  const auto dumps = world_->flight_dumps();
  ASSERT_TRUE(has_dump(dumps, kA, "incarnation_fence"));
  bool checked = false;
  for (const auto& d : dumps) {
    if (d.space != kA || d.reason != "incarnation_fence") continue;
    checked = true;
    EXPECT_TRUE(contains(d.json, "RETRANSMIT")) << d.json;  // injected fault
    EXPECT_TRUE(contains(d.json, "FENCE")) << d.json;       // stale frame
    EXPECT_TRUE(contains(d.json, "REJOIN")) << d.json;      // B came back
  }
  EXPECT_TRUE(checked);
  // Rate limit: flooding more stale frames must not re-dump for the same
  // {peer, incarnation}.
  const std::size_t dump_count = dumps.size();
  EXPECT_EQ(world_->flight_dumps().size(), dump_count);
}

// --- SLO breach dump + bench counters ---------------------------------------

TEST(SloBreachTest, TightObjectiveCountsViolationsAndDumpsRing) {
  WorldOptions options;
  options.cost = CostModel::sparc_ethernet();  // real virtual-ns latencies
  options.cache.closure_bytes = 0;
  // 1 ns threshold: every FETCH violates; tiny window so the breach edge
  // fires within one prefetch's worth of samples.
  options.slo.objectives.push_back(
      {"FETCH", /*threshold_ns=*/1, /*target=*/0.5, /*window=*/8,
       /*breach_burn=*/1.5});
  World world(options);
  AddressSpace& ground = world.create_space("ground");
  AddressSpace& home = world.create_space("home");
  workload::register_list_type(world).status().check();
  ListNode* head = nullptr;
  home.run([&](Runtime& rt) {
    auto h = workload::build_list(rt, 32, [](std::uint32_t i) {
      return static_cast<std::int64_t>(i);
    });
    h.status().check();
    head = h.value();
  });
  home.bind("head", [&](CallContext&) -> ListNode* { return head; }).check();

  ground.run([&](Runtime& rt) {
    Session session(rt);
    auto h = typed_call<ListNode*>(rt, SpaceId{1}, "head");
    ASSERT_TRUE(h.is_ok()) << h.status().to_string();
    // Walk the list uncached: each hop is one FETCH roundtrip, each over
    // threshold.
    std::int64_t sum = 0;
    for (ListNode* n = h.value(); n != nullptr; n = n->next) sum += n->value;
    EXPECT_GT(sum, 0);
    ASSERT_TRUE(session.end().is_ok());

    const auto& counters = rt.metrics().counters();
    const auto violations = counters.find("slo.violations{FETCH}");
    ASSERT_NE(violations, counters.end());
    EXPECT_GE(violations->second.value, 8u);
    EXPECT_NE(counters.find("slo.breaches{FETCH}"), counters.end());
    EXPECT_GE(rt.telemetry().flight().dump_count(), 1u);
  });

  const auto dumps = world.flight_dumps();
  bool saw_breach_dump = false;
  for (const auto& d : dumps) {
    if (d.reason != "slo_breach") continue;
    saw_breach_dump = true;
    EXPECT_TRUE(contains(d.json, "SLO_BREACH")) << d.json;
    EXPECT_TRUE(contains(d.json, "FETCH"));
  }
  EXPECT_TRUE(saw_breach_dump);
}

// --- critical path over a pipelined fan-out ----------------------------------

TEST(CriticalPathTest, AttributionSumsExactlyOnPipelinedFanout) {
  WorldOptions options;
  CostModel cost = CostModel::sparc_ethernet();
  cost.per_message_ns = 1'000'000;  // 1 ms links: network dominates
  options.cost = cost;
  options.cache.closure_bytes = 0;
  options.tracing = true;
  World world(options);
  AddressSpace& ground = world.create_space("ground");
  constexpr std::uint32_t kHomes = 4;
  for (std::uint32_t h = 0; h < kHomes; ++h) {
    AddressSpace& home = world.create_space("home" + std::to_string(h + 1));
    home.bind("echo",
              [](CallContext&, std::int64_t v) -> std::int64_t { return v; })
        .check();
  }

  const SessionId sid = ground.run([&](Runtime& rt) {
    Session session(rt);
    const SessionId id = session.id();
    std::vector<TypedCallFuture<std::int64_t>> futures;
    for (std::uint32_t d = 0; d < kHomes; ++d) {
      auto fut = session.call_async<std::int64_t>(
          static_cast<SpaceId>(d + 1), "echo", static_cast<std::int64_t>(d));
      fut.status().check();
      futures.push_back(std::move(fut.value()));
    }
    for (auto& fut : futures) {
      auto got = fut.get();
      got.status().check();
    }
    session.end().check();
    return id;
  });

  CriticalPathAnalyzer analyzer(world.collect_spans());
  auto result = analyzer.analyze_session(sid);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const CriticalPathBreakdown& bd = result.value();

  // The sweep charges every instant of the root window to exactly one
  // component, so the five components sum to the measured total — the
  // "within 5%" acceptance bar holds with equality.
  EXPECT_EQ(bd.network_ns + bd.execution_ns + bd.lock_wait_ns +
                bd.retransmit_ns + bd.local_ns,
            bd.total_ns);
  EXPECT_EQ(bd.attributed_ns(),
            bd.network_ns + bd.execution_ns + bd.lock_wait_ns +
                bd.retransmit_ns + bd.local_ns);
  EXPECT_GT(bd.total_ns, 0u);
  EXPECT_GT(bd.network_ns, 0u);   // 1 ms per message dwarfs everything
  EXPECT_GT(bd.execution_ns, 0u); // the homes did run the echo bodies
  EXPECT_EQ(bd.retransmit_ns, 0u);  // clean wire
  EXPECT_GT(bd.span_count, kHomes);
  EXPECT_FALSE(bd.hops.empty());
  for (const auto& hop : bd.hops) {
    EXPECT_EQ(hop.network_ns + hop.execution_ns + hop.lock_wait_ns +
                  hop.retransmit_ns,
              hop.total_ns);
  }
  const std::string json = bd.to_json();
  EXPECT_TRUE(contains(json, "\"total_ns\""));
  EXPECT_TRUE(contains(json, "\"hops\""));

  // The pipelined calls overlap, so summing the per-hop windows must
  // exceed the root window — attribution, not double counting.
  std::uint64_t hop_total = 0;
  for (const auto& hop : bd.hops) hop_total += hop.total_ns;
  EXPECT_GT(hop_total, bd.total_ns);
}

// --- aggregated health snapshot ----------------------------------------------

TEST(HealthJsonTest, SnapshotAggregatesDetectorLocksSloAndFlight) {
  WorldOptions options;
  options.cost = CostModel::zero();
  options.cache.closure_bytes = 0;
  World world(options);
  AddressSpace& a = world.create_space("alpha");
  AddressSpace& b = world.create_space("beta");
  b.bind("echo",
         [](CallContext&, std::int64_t v) -> std::int64_t { return v; })
      .check();
  a.run([&](Runtime& rt) {
    Session session(rt);
    auto got = typed_call<std::int64_t>(rt, b.id(), "echo",
                                        static_cast<std::int64_t>(5));
    ASSERT_TRUE(got.is_ok());
    ASSERT_TRUE(session.end().is_ok());
  });

  const std::string health = world.health_json();
  EXPECT_TRUE(contains(health, "\"incarnations\""));
  EXPECT_TRUE(contains(health, "\"spaces\""));
  EXPECT_TRUE(contains(health, "\"alpha\""));
  EXPECT_TRUE(contains(health, "\"beta\""));
  EXPECT_TRUE(contains(health, "\"detector\""));
  EXPECT_TRUE(contains(health, "\"locks\""));
  EXPECT_TRUE(contains(health, "\"dedup_window\""));
  EXPECT_TRUE(contains(health, "\"completion_slots\""));
  EXPECT_TRUE(contains(health, "\"slo\""));
  EXPECT_TRUE(contains(health, "\"flight\""));
  EXPECT_TRUE(contains(health, "ALIVE"));

  world.mark_dead(b.id());
  EXPECT_TRUE(contains(world.health_json(), "DEAD"));
}

}  // namespace
}  // namespace srpc
