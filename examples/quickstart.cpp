// Quickstart: pass a pointer to a remote procedure, exactly like a local one.
//
// Conventional RPC cannot do what this file does: `sum_and_double` receives
// a `ListNode*` that points at data living in ANOTHER address space, walks
// it with plain `->` dereferences, mutates it in place — and the caller
// sees the mutation in its own heap when the call returns.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/smart_rpc.hpp"
#include "workload/list.hpp"

using srpc::CallContext;
using srpc::Runtime;
using srpc::Session;
using srpc::World;
using srpc::workload::ListNode;

int main() {
  // A "world" is the distributed environment: the shared type name-server
  // and the (simulated SPARC/Ethernet) network.
  World world;
  auto& client = world.create_space("client");
  auto& server = world.create_space("server");

  // Describe ListNode once; the descriptor is what lets heterogeneous
  // spaces rebuild the value and the runtime find the pointer fields.
  srpc::workload::register_list_type(world).status().check();

  // The remote procedure: note there is nothing RPC-specific in the body.
  server
      .bind("sum_and_double",
            [](CallContext&, ListNode* head) -> std::int64_t {
              std::int64_t sum = 0;
              for (ListNode* n = head; n != nullptr; n = n->next) {
                sum += n->value;
                n->value *= 2;  // remote data, modified in place
              }
              return sum;
            })
      .check();

  client.run([&](Runtime& rt) {
    // Build a list in the client's managed heap ("the heap area under the
    // system control" — the paper's home for all shared data).
    auto head = srpc::workload::build_list(
        rt, 10, [](std::uint32_t i) { return static_cast<std::int64_t>(i + 1); });
    head.status().check();

    std::printf("before call: local sum = %lld\n",
                static_cast<long long>(srpc::workload::sum_list(head.value())));

    // An RPC session brackets the period during which remote pointers are
    // valid and coherency is maintained (paper §3.1).
    Session session(rt);
    auto sum =
        session.call<std::int64_t>(server.id(), "sum_and_double", head.value());
    sum.status().check();

    std::printf("server summed:        %lld\n", static_cast<long long>(sum.value()));
    std::printf("after call:  local sum = %lld  (server's writes came home)\n",
                static_cast<long long>(srpc::workload::sum_list(head.value())));

    session.end().check();
    return 0;
  });

  std::printf("quickstart OK\n");
  return 0;
}
