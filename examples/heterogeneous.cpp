// Heterogeneity (paper §5.2): a big-endian 32-bit "SPARCstation" space and
// the little-endian 64-bit host share a linked list. Only the LOGICAL type
// crosses the boundary — each side stores its own layout (4-byte vs 8-byte
// pointers, opposite byte orders) and the canonical XDR form reconciles
// them on every transfer. This is precisely what the paper contrasts with
// heterogeneous DSM systems, which force one physical layout on everyone.
//
// Build & run:  ./build/examples/heterogeneous
#include <cstdio>

#include "core/smart_rpc.hpp"
#include "types/value_view.hpp"
#include "workload/list.hpp"

using namespace srpc;
using workload::ListNode;

int main() {
  World world;
  auto& host = world.create_space("host-le64", host_arch());
  auto& sparc = world.create_space("sparc-be32", sparc32_arch());
  workload::register_list_type(world).status().check();
  const TypeId node_type = world.registry().find_by_name("ListNode").value();

  std::printf("ListNode is %llu bytes on %s, %llu bytes on %s — same logical type\n",
              static_cast<unsigned long long>(
                  world.layouts().size_of(sparc32_arch(), node_type)),
              sparc.name().c_str(),
              static_cast<unsigned long long>(
                  world.layouts().size_of(host_arch(), node_type)),
              host.name().c_str());

  // Build a list in the SPARC space's heap. Its images are big-endian with
  // 4-byte pointers, so we write them through the type descriptor.
  const std::uint64_t head_addr = sparc.run([&](Runtime& rt) -> std::uint64_t {
    std::uint64_t addrs[4] = {0, 0, 0, 0};
    for (int i = 0; i < 4; ++i) {
      auto mem = rt.heap().allocate(node_type);
      mem.status().check();
      addrs[i] = reinterpret_cast<std::uint64_t>(mem.value());
    }
    for (int i = 0; i < 4; ++i) {
      ValueView node(rt.registry(), rt.layouts(), rt.arch(), node_type,
                     reinterpret_cast<void*>(addrs[i]));
      node.field("value").value().set_int((i + 1) * 1000).check();
      node.field("next").value().set_pointer(i < 3 ? addrs[i + 1] : 0).check();
    }
    std::printf("[sparc] built 4 nodes at low addresses (fit 4-byte pointers), "
                "head=0x%llx\n",
                static_cast<unsigned long long>(addrs[0]));
    return addrs[0];
  });

  sparc
      .bind("give_head",
            [head_addr](CallContext&, std::int32_t) -> ListNode* {
              return reinterpret_cast<ListNode*>(head_addr);
            })
      .check();

  host.run([&](Runtime& rt) {
    Session session(rt);
    auto head = session.call<ListNode*>(sparc.id(), "give_head", 0);
    head.status().check();

    // Plain 64-bit little-endian traversal of big-endian 32-bit data:
    std::printf("[host]  traversing the remote list:");
    for (const ListNode* n = head.value(); n != nullptr; n = n->next) {
      std::printf(" %lld", static_cast<long long>(n->value));
    }
    std::printf("\n[host]  negating every element (writes convert back on "
                "write-back)\n");
    workload::scale_list(head.value(), -1);
    session.end().check();
  });

  sparc.run([&](Runtime& rt) {
    std::printf("[sparc] home values after the session:");
    std::uint64_t cursor = head_addr;
    while (cursor != 0) {
      ValueView node(rt.registry(), rt.layouts(), rt.arch(), node_type,
                     reinterpret_cast<void*>(cursor));
      std::printf(" %lld",
                  static_cast<long long>(node.field("value").value().get_int().value()));
      cursor = node.field("next").value().get_pointer().value();
    }
    std::printf("\n");
  });

  std::printf("heterogeneous OK\n");
  return 0;
}
