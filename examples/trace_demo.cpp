// Distributed tracing demo: one traced run that exercises every wire kind
// the observability layer annotates — CALL (nested + callback), FETCH
// (fault-driven page fills), ALLOC_BATCH (batched extended_malloc), DEREF
// (the lazy baseline's explicit callbacks), and both session-commit
// flavours: WB_PREPARE/WB_COMMIT (two-phase, the default) and the legacy
// single-shot WRITE_BACK, plus the INVALIDATE multicast either way.
//
// Output:
//   trace_demo.json — Chrome trace-event / Perfetto timeline of all spaces
//   (load it at https://ui.perfetto.dev or chrome://tracing)
//   plus each space's metrics snapshot, the aggregated health snapshot
//   (World::health_json — detector verdicts, lock contention, SLO state,
//   flight-recorder fill), and the critical-path breakdown of the first
//   session on stdout.
//
// Build & run:  ./build/examples/trace_demo
#include <cstdio>

#include "baselines/lazy_rpc.hpp"
#include "core/smart_rpc.hpp"
#include "obs/critical_path.hpp"
#include "workload/list.hpp"

using namespace srpc;
using workload::ListNode;

int main() {
  WorldOptions options;
  options.tracing = true;  // SRPC_TRACE=1 does the same from the outside
  options.cache.closure_bytes = 0;  // no eager closure: every page is a FETCH
  World world(options);
  auto& a = world.create_space("A");
  auto& b = world.create_space("B");
  auto& c = world.create_space("C");
  workload::register_list_type(world).status().check();

  const SpaceId a_id = a.id();
  const SpaceId c_id = c.id();

  // C: bumps the list (write faults -> travelling modified set) and calls
  // back into A — the callback span parents under C's serve span.
  c.bind("bump_and_report",
         [a_id](CallContext& ctx, ListNode* head) -> std::int64_t {
           std::int64_t sum = 0;
           for (ListNode* n = head; n != nullptr; n = n->next) {
             n->value += 100;
             sum += n->value;
           }
           auto ack = typed_call<std::int64_t>(ctx.runtime, a_id, "notify", sum);
           ack.status().check();
           return sum;
         })
      .check();

  // B: forwards to C (nested CALL), so the trace crosses three spaces.
  b.bind("forward",
         [c_id](CallContext& ctx, ListNode* head) -> std::int64_t {
           auto sum =
               typed_call<std::int64_t>(ctx.runtime, c_id, "bump_and_report", head);
           sum.status().check();
           return sum.value();
         })
      .check();

  // B: the lazy baseline's explicit-callback walk (DEREF round trips).
  b.bind("lazy_sum",
         [](CallContext& ctx, LongPointer head) -> std::int64_t {
           lazy::LazyClient client(ctx.runtime);
           std::int64_t sum = 0;
           LongPointer p = head;
           while (!p.is_null()) {
             auto value = client.deref(p);
             value.status().check();
             sum += value.value().view<ListNode>()->value;
             p = value.value().pointers.at(0);
           }
           return sum;
         })
      .check();

  SessionId first_session = kNoSession;
  a.run([&](Runtime& rt) {
    auto head = workload::build_list(
        rt, 8, [](std::uint32_t i) { return static_cast<std::int64_t>(i + 1); });
    head.status().check();
    bind_procedure(rt, "notify",
                   [](CallContext&, std::int64_t sum) -> std::int64_t { return sum; })
        .check();

    // Session 1 — nested chain + callback + remote allocation, committed
    // with the two-phase WB_PREPARE / WB_COMMIT protocol (the default).
    {
      Session session(rt);
      first_session = session.id();
      auto sum = session.call<std::int64_t>(b.id(), "forward", head.value());
      sum.status().check();
      std::printf("[A] chain returned %lld\n", static_cast<long long>(sum.value()));

      // Lazy-method callbacks: B walks A's list via DEREF round trips.
      auto type = rt.host_types().find<ListNode>();
      type.status().check();
      auto exported = lazy::export_pointer(rt, head.value(), type.value());
      exported.status().check();
      auto lazy_sum =
          session.call<std::int64_t>(b.id(), "lazy_sum", exported.value());
      lazy_sum.status().check();
      std::printf("[A] lazy walk summed %lld\n",
                  static_cast<long long>(lazy_sum.value()));

      // Batched remote memory management: ALLOC_BATCH to B's home. The
      // write lands after the last control transfer to B, so it is still
      // pending at session end — that is what WB_PREPARE/WB_COMMIT ship.
      auto node = session.extended_malloc<ListNode>(b.id());
      node.status().check();
      node.value()->value = 4242;
      session.end().check();
    }

    // Session 2 — same update path, but with the two-phase commit turned
    // off so the epilogue uses the legacy single-shot WRITE_BACK.
    rt.set_two_phase_writeback(false);
    {
      Session session(rt);
      auto sum = session.call<std::int64_t>(b.id(), "forward", head.value());
      sum.status().check();
      auto node = session.extended_malloc<ListNode>(b.id());
      node.status().check();
      node.value()->value = 1717;  // pending at end -> legacy WRITE_BACK
      session.end().check();
    }
    rt.set_two_phase_writeback(true);
    return 0;
  });

  // Per-space metrics snapshots (counters + latency histograms as JSON).
  for (SpaceId id = 0; id < world.space_count(); ++id) {
    auto& space = world.space(id);
    const std::string json =
        space.run([](Runtime& rt) { return rt.metrics_json(); });
    std::printf("[%s] metrics: %s\n", space.name().c_str(), json.c_str());
  }

  // Aggregated health snapshot: detector verdicts, lock contention, dedup
  // and completion-slot occupancy, SLO state, flight-recorder fill.
  std::printf("health: %s\n", world.health_json().c_str());

  // Where did session 1's wall-clock go? The sweep charges every instant
  // to exactly one component, so the parts sum to the total.
  CriticalPathAnalyzer analyzer(world.collect_spans());
  auto breakdown = analyzer.analyze_session(first_session);
  breakdown.status().check();
  const CriticalPathBreakdown& cp = breakdown.value();
  std::printf(
      "critical path of session %llu: total %.3f ms = network %.3f + "
      "execution %.3f + lock %.3f + retransmit %.3f + local %.3f\n",
      static_cast<unsigned long long>(first_session),
      static_cast<double>(cp.total_ns) / 1e6,
      static_cast<double>(cp.network_ns) / 1e6,
      static_cast<double>(cp.execution_ns) / 1e6,
      static_cast<double>(cp.lock_wait_ns) / 1e6,
      static_cast<double>(cp.retransmit_ns) / 1e6,
      static_cast<double>(cp.local_ns) / 1e6);

  // One merged Chrome trace-event / Perfetto timeline for every space.
  world.merge_traces("trace_demo.json").check();
  std::printf("wrote trace_demo.json (open in https://ui.perfetto.dev)\n");
  return 0;
}
