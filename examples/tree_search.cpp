// The paper's motivating workload (§4.1): a large binary tree lives on the
// caller; the callee searches part of it. Compares the three methods the
// paper evaluates — fully eager (ship the whole tree), fully lazy (one
// callback per dereference), and smart RPC (swizzled pointers + MMU-driven
// caching + bounded eager closure) — and prints their simulated
// SPARC/Ethernet costs side by side.
//
// Build & run:  ./build/examples/tree_search
#include <cstdio>

#include "baselines/eager_rpc.hpp"
#include "baselines/lazy_rpc.hpp"
#include "core/smart_rpc.hpp"
#include "workload/tree.hpp"

using namespace srpc;
using workload::TreeNode;

int main() {
  World world;  // default cost model: the paper's SPARC + 10 Mbps Ethernet
  auto& caller = world.create_space("caller");
  auto& callee = world.create_space("callee");
  workload::register_tree_type(world).status().check();
  const TypeId tree_type = world.registry().find_by_name("TreeNode").value();

  constexpr std::uint32_t kNodes = 8191;
  constexpr std::uint64_t kVisit = kNodes / 4;  // access ratio 0.25

  // --- the three server-side flavours --------------------------------------
  callee
      .bind("smart_visit",
            [](CallContext&, TreeNode* root, std::uint64_t limit) -> std::int64_t {
              return workload::visit_prefix(root, limit);  // just dereference
            })
      .check();

  eager::bind(*&callee, "eager_visit", tree_type,
              [](CallContext&, void* root, std::int64_t limit, std::int64_t)
                  -> Result<std::int64_t> {
                return workload::visit_prefix(static_cast<TreeNode*>(root),
                                              static_cast<std::uint64_t>(limit));
              })
      .check();

  callee
      .bind("lazy_visit",
            [](CallContext& ctx, LongPointer root, std::uint64_t limit) -> std::int64_t {
              lazy::LazyClient client(ctx.runtime);
              std::int64_t sum = 0;
              std::uint64_t visited = 0;
              std::vector<LongPointer> stack;
              if (!root.is_null()) stack.push_back(root);
              while (!stack.empty() && visited < limit) {
                const LongPointer node = stack.back();
                stack.pop_back();
                auto value = client.deref(node);  // explicit callback
                value.status().check();
                sum += value.value().view<TreeNode>()->data;
                ++visited;
                if (!value.value().pointers[1].is_null())
                  stack.push_back(value.value().pointers[1]);
                if (!value.value().pointers[0].is_null())
                  stack.push_back(value.value().pointers[0]);
              }
              return sum;
            })
      .check();

  caller.run([&](Runtime& rt) {
    auto root = workload::build_complete_tree(rt, kNodes);
    root.status().check();
    const std::int64_t expected = workload::visit_prefix(root.value(), kVisit);
    std::printf("tree: %u nodes, visiting %llu (ratio 0.25); expected sum %lld\n\n",
                kNodes, static_cast<unsigned long long>(kVisit),
                static_cast<long long>(expected));

    auto report = [&](const char* name, std::int64_t sum) {
      const auto stats = world.net_stats();
      std::printf("%-12s sum=%-10lld virtual=%7.3fs  messages=%-5llu wire=%llu bytes\n",
                  name, static_cast<long long>(sum), world.virtual_seconds(),
                  static_cast<unsigned long long>(stats.messages),
                  static_cast<unsigned long long>(stats.wire_bytes));
    };

    {
      world.reset_metering();
      Session session(rt);
      auto sum = eager::call(rt, callee.id(), "eager_visit", tree_type, root.value(),
                             static_cast<std::int64_t>(kVisit), 0);
      sum.status().check();
      report("fully eager", sum.value());
      session.end().check();
    }
    {
      world.reset_metering();
      Session session(rt);
      auto lp = lazy::export_pointer(rt, root.value(), tree_type);
      lp.status().check();
      auto sum = session.call<std::int64_t>(callee.id(), "lazy_visit", lp.value(),
                                            kVisit);
      sum.status().check();
      report("fully lazy", sum.value());
      session.end().check();
    }
    {
      world.reset_metering();
      Session session(rt);
      auto sum = session.call<std::int64_t>(callee.id(), "smart_visit", root.value(),
                                            kVisit);
      sum.status().check();
      report("smart RPC", sum.value());
      session.end().check();
    }
    return 0;
  });

  std::printf("\ntree_search OK\n");
  return 0;
}
