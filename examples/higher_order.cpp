// Higher-order RPC (the paper's §6 future work, shipped as an extension):
// function references marshal like values, so a generic remote `fold` can
// take both its data AND its combining function from the caller. The data
// pointer dereferences transparently; the function reference calls back
// into whichever space bound it.
//
// Build & run:  ./build/examples/higher_order
#include <cstdio>

#include "core/funcref.hpp"
#include "core/smart_rpc.hpp"
#include "workload/list.hpp"

using namespace srpc;
using workload::ListNode;

int main() {
  World world;
  auto& client = world.create_space("client");
  auto& compute = world.create_space("compute");
  workload::register_list_type(world).status().check();

  // A generic remote fold: neither the data nor the operation is local.
  compute
      .bind("fold",
            [](CallContext& ctx, ListNode* head, FuncRef op,
               std::int64_t seed) -> std::int64_t {
              std::int64_t acc = seed;
              for (ListNode* n = head; n != nullptr; n = n->next) {
                auto next = invoke<std::int64_t>(ctx.runtime, op, acc, n->value);
                next.status().check();
                acc = next.value();
              }
              return acc;
            })
      .check();

  client.run([&](Runtime& rt) {
    auto head = workload::build_list(
        rt, 6, [](std::uint32_t i) { return static_cast<std::int64_t>(i + 1); });
    head.status().check();

    // Two operations bound in the CLIENT; the compute space never sees
    // their code, only references.
    auto add = make_funcref(rt, "add", [](CallContext&, std::int64_t a,
                                          std::int64_t b) { return a + b; });
    auto mul = make_funcref(rt, "mul", [](CallContext&, std::int64_t a,
                                          std::int64_t b) { return a * b; });
    add.status().check();
    mul.status().check();

    Session session(rt);
    auto sum = session.call<std::int64_t>(compute.id(), "fold", head.value(),
                                          add.value(), std::int64_t{0});
    sum.status().check();
    std::printf("fold(+, 0)  over [1..6] = %lld\n",
                static_cast<long long>(sum.value()));

    auto product = session.call<std::int64_t>(compute.id(), "fold", head.value(),
                                              mul.value(), std::int64_t{1});
    product.status().check();
    std::printf("fold(*, 1)  over [1..6] = %lld\n",
                static_cast<long long>(product.value()));
    session.end().check();
  });

  std::printf("higher_order OK\n");
  return 0;
}
