// Remote memory management (paper §3.5): build a binary search tree INSIDE
// another address space with extended_malloc, without writing a single
// server-side construction procedure.
//
// Every node is allocated in the server's heap but initialised locally
// through a born-resident cache page; the home-side allocations are batched
// and flushed when control next transfers, and the initial values travel
// with the ordinary modified data set.
//
// Build & run:  ./build/examples/remote_alloc
#include <cstdio>

#include "core/smart_rpc.hpp"
#include "workload/tree.hpp"

using namespace srpc;
using workload::TreeNode;

namespace {

// Ordinary BST insert — it has no idea the nodes are remote.
TreeNode* insert(Session& session, SpaceId home, TreeNode* root, std::int64_t value) {
  if (root == nullptr) {
    auto node = session.extended_malloc<TreeNode>(home);
    node.status().check();
    node.value()->data = value;
    return node.value();
  }
  if (value < root->data) {
    root->left = insert(session, home, root->left, value);
  } else {
    root->right = insert(session, home, root->right, value);
  }
  return root;
}

std::int64_t local_inorder_min(const TreeNode* root) {
  while (root->left != nullptr) root = root->left;
  return root->data;
}

}  // namespace

int main() {
  World world;
  auto& client = world.create_space("client");
  auto& server = world.create_space("server");
  workload::register_tree_type(world).status().check();

  // The server knows nothing about construction; it only searches.
  server
      .bind("contains",
            [](CallContext&, TreeNode* root, std::int64_t needle) -> bool {
              while (root != nullptr) {
                if (root->data == needle) return true;
                root = needle < root->data ? root->left : root->right;
              }
              return false;
            })
      .check();
  server
      .bind("min",
            [](CallContext&, TreeNode* root) -> std::int64_t {
              return local_inorder_min(root);
            })
      .check();

  client.run([&](Runtime& rt) {
    Session session(rt);

    // Build a BST whose every node lives in the SERVER's heap.
    const std::int64_t values[] = {50, 30, 70, 20, 40, 60, 80, 10, 90};
    TreeNode* root = nullptr;
    for (const std::int64_t v : values) {
      root = insert(session, server.id(), root, v);
    }
    std::printf("built a 9-node BST in the server's address space\n");

    // Ask the server to search its own tree: the root pointer we pass is
    // (from the server's view) plain home data.
    for (const std::int64_t needle : {40, 55, 90}) {
      auto found = session.call<bool>(server.id(), "contains", root, needle);
      found.status().check();
      std::printf("server: contains(%lld) -> %s\n", static_cast<long long>(needle),
                  found.value() ? "yes" : "no");
    }
    auto min = session.call<std::int64_t>(server.id(), "min", root);
    min.status().check();
    std::printf("server: min = %lld\n", static_cast<long long>(min.value()));

    // Prune: give the smallest subtree back with extended_free.
    TreeNode* doomed = root->left->left->left;  // node 10
    root->left->left->left = nullptr;
    session.extended_free(doomed).check();
    auto still_there =
        session.call<bool>(server.id(), "contains", root, std::int64_t{10});
    still_there.status().check();
    std::printf("after extended_free(10): contains(10) -> %s\n",
                still_there.value() ? "yes" : "no");

    session.end().check();
    return 0;
  });

  // After the session, the structure persists in the server's heap.
  const auto live = server.run([](Runtime& rt) { return rt.heap().live_allocations(); });
  std::printf("server heap now owns %zu nodes (8 after the free)\n", live);
  std::printf("remote_alloc OK\n");
  return 0;
}
