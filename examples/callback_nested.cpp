// Nested RPCs and callbacks in one session (paper §3.1, Fig. 1).
//
// The ground thread in space A calls B; B calls C (nested); C calls BACK
// into A (callback) — and the remote pointer A passed travels the whole
// chain, staying dereferenceable everywhere, while the single-active-thread
// property holds throughout. The travelling modified data set keeps every
// space's view coherent (§3.4): C's update is visible to A's callback
// handler immediately.
//
// Build & run:  ./build/examples/callback_nested
#include <cstdio>

#include "core/smart_rpc.hpp"
#include "workload/list.hpp"

using namespace srpc;
using workload::ListNode;

int main() {
  World world;
  auto& a = world.create_space("A");
  auto& b = world.create_space("B");
  auto& c = world.create_space("C");
  workload::register_list_type(world).status().check();

  const SpaceId a_id = a.id();
  const SpaceId c_id = c.id();

  // C: bumps every element (a WRITE to remote data), then calls back A.
  c.bind("bump_and_report",
         [a_id](CallContext& ctx, ListNode* head) -> std::int64_t {
           std::int64_t sum = 0;
           for (ListNode* n = head; n != nullptr; n = n->next) {
             n->value += 100;
             sum += n->value;
           }
           // Callback: C remotely calls its (transitive) caller A. The
           // modified data set travels with this call, so A's handler sees
           // the +100s already applied to its own home data.
           auto ack = typed_call<std::string>(ctx.runtime, a_id, "notify", sum);
           ack.status().check();
           std::printf("  [C] bumped list, A answered: \"%s\"\n",
                       ack.value().c_str());
           return sum;
         })
      .check();

  // B: forwards the pointer to C (nested RPC).
  b.bind("forward",
         [c_id](CallContext& ctx, ListNode* head) -> std::int64_t {
           std::printf("  [B] forwarding the remote pointer to C\n");
           auto sum = typed_call<std::int64_t>(ctx.runtime, c_id,
                                               "bump_and_report", head);
           sum.status().check();
           return sum.value();
         })
      .check();

  a.run([&](Runtime& rt) {
    auto head = workload::build_list(
        rt, 5, [](std::uint32_t i) { return static_cast<std::int64_t>(i + 1); });
    head.status().check();
    ListNode* list = head.value();

    // A's callback handler: runs while A is blocked in its own call.
    bind_procedure(rt, "notify", [list](CallContext&, std::int64_t sum) -> std::string {
      // Coherency check from inside the callback: C's writes are visible
      // in A's own heap right now, mid-session.
      const std::int64_t here = srpc::workload::sum_list(list);
      std::printf("  [A] callback: C reports %lld; my own list sums to %lld\n",
                  static_cast<long long>(sum), static_cast<long long>(here));
      return here == sum ? std::string("coherent") : std::string("STALE!");
    }).check();

    std::printf("[A] list sum before: %lld\n",
                static_cast<long long>(srpc::workload::sum_list(list)));

    Session session(rt);
    auto sum = session.call<std::int64_t>(b.id(), "forward", list);
    sum.status().check();
    std::printf("[A] chain returned %lld; list sum after: %lld\n",
                static_cast<long long>(sum.value()),
                static_cast<long long>(srpc::workload::sum_list(list)));
    session.end().check();
    return 0;
  });

  std::printf("callback_nested OK\n");
  return 0;
}
